//! Task checkers and stabilization reports.
//!
//! A checker validates that an execution, *after* it claims to have stabilized,
//! actually satisfies the requirements of the distributed task it was run for:
//! output-configuration membership, safety conditions on the output vector and —
//! for dynamic tasks such as asynchronous unison — liveness conditions measured over
//! a verification window.

use crate::algorithm::Algorithm;
use crate::executor::Execution;
use crate::graph::Graph;

/// A checker for a distributed task `T`.
///
/// `check_snapshot` validates a single output configuration (safety); tasks with
/// liveness requirements additionally implement `check_window` which is evaluated over
/// a post-stabilization verification window.
pub trait TaskChecker<A: Algorithm> {
    /// Validates the output configuration at a single point in time. Returns a list
    /// of violation descriptions (empty = valid).
    fn check_snapshot(&self, graph: &Graph, config: &[A::State]) -> Vec<String>;

    /// Validates behaviour over a window: `output_changes[v]` is the number of times
    /// node `v` changed its output value during the window and `rounds` is the number
    /// of rounds the window spanned. The default implementation accepts anything
    /// (static tasks).
    fn check_window(&self, _graph: &Graph, _output_changes: &[u64], _rounds: u64) -> Vec<String> {
        Vec::new()
    }

    /// Human-readable task name.
    fn task_name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }

    /// The per-node decomposition of the *snapshot* check, when it has one:
    /// `check_snapshot(g, c).is_empty() ⟺ ∀v. node_ok(v) ∧ weight clause`
    /// (see [`crate::oracle::LocalPredicate`]). Verification windows then
    /// track safety incrementally and only materialize violation messages on
    /// rounds the tracker already knows are bad — O(changed·deg) per step on
    /// clean windows instead of a full O(n·deg) scan per round. Checkers
    /// whose snapshot check does not decompose keep the default `None`.
    fn snapshot_as_local(&self) -> Option<&dyn crate::oracle::LocalPredicate<A::State>> {
        None
    }
}

/// Cap on the violation messages a measurement accumulates. Windows on
/// million-node graphs can produce O(n) violations *per round*; everything
/// past the cap is replaced by a single deterministic suppression marker so
/// a long broken window cannot balloon memory (and, once capped, bad rounds
/// stop materializing messages at all). The cap is part of the persisted
/// results' format: it must stay deterministic across engines, schedulers
/// and checkpoint/resume.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// Appends `message` to `violations` subject to [`MAX_RECORDED_VIOLATIONS`]:
/// the `MAX+1`-th push records the suppression marker instead, and further
/// pushes are dropped. Deterministic: the resulting vector is a pure
/// function of the message sequence.
pub fn push_violation(violations: &mut Vec<String>, message: String) {
    use std::cmp::Ordering;
    match violations.len().cmp(&MAX_RECORDED_VIOLATIONS) {
        Ordering::Less => violations.push(message),
        Ordering::Equal => violations.push(format!(
            "further violations suppressed after the first {MAX_RECORDED_VIOLATIONS}"
        )),
        Ordering::Greater => {}
    }
}

/// Whether `violations` already carries the suppression marker — callers
/// skip materializing further violation messages entirely once it does.
pub fn violations_capped(violations: &[String]) -> bool {
    violations.len() > MAX_RECORDED_VIOLATIONS
}

/// The result of measuring a stabilization run plus a post-stabilization verification
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizationReport {
    /// Rounds until the legitimacy predicate first held (`None` if the budget ran
    /// out).
    pub stabilization_rounds: Option<u64>,
    /// Steps until the legitimacy predicate first held (`None` if the budget ran out).
    pub stabilization_steps: Option<u64>,
    /// Violations observed during the verification window (empty for a clean run).
    pub violations: Vec<String>,
    /// Rounds spent in the verification window.
    pub verification_rounds: u64,
}

impl StabilizationReport {
    /// Whether the run stabilized and passed verification.
    pub fn is_clean(&self) -> bool {
        self.stabilization_rounds.is_some() && self.violations.is_empty()
    }
}

/// Runs `exec` under `scheduler` until `oracle` reports legitimacy (with a budget of
/// `max_rounds`), then runs `verify_rounds` additional rounds checking the task's
/// safety at every round boundary and its liveness over the whole window.
pub fn measure_stabilization<A, S, O, C>(
    exec: &mut Execution<'_, A>,
    scheduler: &mut S,
    oracle: &O,
    checker: &C,
    max_rounds: u64,
    verify_rounds: u64,
) -> StabilizationReport
where
    A: Algorithm,
    S: crate::scheduler::Scheduler,
    O: crate::algorithm::LegitimacyOracle<A>,
    C: TaskChecker<A>,
{
    let outcome = exec.run_until_legitimate(scheduler, oracle, max_rounds);
    let (stab_rounds, stab_steps) = match outcome {
        crate::executor::StabilizationOutcome::Stabilized { rounds, steps } => {
            (Some(rounds), Some(steps))
        }
        crate::executor::StabilizationOutcome::Exhausted { .. } => (None, None),
    };

    let mut violations = Vec::new();
    let mut verification_rounds = 0;
    if stab_rounds.is_some() {
        // reset the output-change counters so the window only counts fresh changes
        exec.take_output_change_counts();
        let start_round = exec.rounds();
        // Incremental safety tracking for the window: the tracker absorbs
        // each step's changed-node list and the (usually clean) per-round
        // check is O(1); the full check_snapshot scan only runs to
        // materialize messages on rounds the tracker says are bad. Falls
        // back to a scan every round for non-decomposing checkers or under
        // SA_FORCE_FULL_ORACLE=1 — same verdicts, same messages.
        let local = if crate::oracle::force_full_oracle() {
            None
        } else {
            checker.snapshot_as_local()
        };
        let mut tracker = local
            .as_ref()
            .map(|_| crate::oracle::LegitimacyTracker::new(exec.graph()));
        while exec.rounds() < start_round + verify_rounds {
            let step = exec.step_with(scheduler);
            if let (Some(local), Some(tracker)) = (local.as_ref(), tracker.as_mut()) {
                tracker.note_step(
                    *local,
                    exec.graph(),
                    exec.configuration(),
                    exec.last_changed(),
                    exec.last_step_uniform(),
                );
            }
            if step.round_completed {
                let round_clean = match (local.as_ref(), tracker.as_mut()) {
                    (Some(local), Some(tracker)) => {
                        tracker.is_legitimate(*local, exec.graph(), exec.configuration())
                    }
                    _ => false, // fallback: always materialize (the scan decides)
                };
                if !round_clean && !violations_capped(&violations) {
                    let graph = exec.graph();
                    let snapshot_violations = checker.check_snapshot(graph, exec.configuration());
                    for v in snapshot_violations {
                        push_violation(&mut violations, format!("round {}: {v}", exec.rounds()));
                    }
                }
            }
        }
        verification_rounds = exec.rounds() - start_round;
        let changes = exec.output_change_counts().to_vec();
        for v in checker.check_window(exec.graph(), &changes, verification_rounds) {
            push_violation(&mut violations, v);
        }
    }

    StabilizationReport {
        stabilization_rounds: stab_rounds,
        stabilization_steps: stab_steps,
        violations,
        verification_rounds,
    }
}

/// The result of measuring a *static* task (LE, MIS, …) by output stability.
///
/// Static tasks require the output vector to become correct and then never change.
/// Because the moment after which no further change will occur cannot be decided
/// online, the measurement runs for a fixed horizon and reports the first round after
/// the *last* observed problem (an incorrect/undefined output vector, a checker
/// violation, or an output change). The caller chooses a horizon and a clean-tail
/// margin large enough to make a late regression implausible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticStabilizationReport {
    /// First round from which the output vector was correct and unchanged until the
    /// end of the horizon, or `None` if the tail was shorter than the required margin.
    pub stabilization_round: Option<u64>,
    /// Number of clean rounds observed at the end of the horizon.
    pub clean_tail_rounds: u64,
    /// Total rounds executed.
    pub horizon_rounds: u64,
    /// The violations observed in the final round (useful when the run failed).
    pub final_violations: Vec<String>,
}

/// Measures the stabilization round of a static task by output stability.
///
/// Runs `horizon_rounds` rounds under `scheduler`. At every round boundary the
/// configuration is checked with `checker::check_snapshot` and the output vector is
/// compared with the previous round's. The stabilization round is the first round of
/// the final streak of clean-and-unchanged rounds, provided that streak is at least
/// `min_clean_tail` rounds long.
pub fn measure_static_stabilization<A, S, C>(
    exec: &mut Execution<'_, A>,
    scheduler: &mut S,
    checker: &C,
    horizon_rounds: u64,
    min_clean_tail: u64,
) -> StaticStabilizationReport
where
    A: Algorithm,
    S: crate::scheduler::Scheduler,
    C: TaskChecker<A>,
{
    let mut last_bad_round: Option<u64> = Some(exec.rounds()); // treat the start as dirty
    let mut prev_output = exec.output_vector();
    let mut final_violations = Vec::new();
    let start_round = exec.rounds();
    let end_round = start_round + horizon_rounds;
    // Incremental safety tracking, as in `measure_stabilization`: per-round
    // cleanliness comes from the tracker when the checker decomposes, and
    // the full scan only runs where messages are actually needed.
    let local = if crate::oracle::force_full_oracle() {
        None
    } else {
        checker.snapshot_as_local()
    };
    let mut tracker = local
        .as_ref()
        .map(|_| crate::oracle::LegitimacyTracker::new(exec.graph()));
    // check the initial configuration too
    {
        let clean = match (local.as_ref(), tracker.as_mut()) {
            (Some(local), Some(tracker)) => {
                tracker.is_legitimate(*local, exec.graph(), exec.configuration())
            }
            _ => checker
                .check_snapshot(exec.graph(), exec.configuration())
                .is_empty(),
        };
        if clean && prev_output.is_some() {
            last_bad_round = None;
        }
    }
    // The output vector is only recomputed on rounds where some node's
    // output actually changed (the per-node counters already know): on a
    // stabilized run the per-round cost is O(1) instead of an O(n)
    // projection + comparison.
    let mut seen_output_changes = exec.counters().total_output_changes();
    while exec.rounds() < end_round {
        let step = exec.step_with(scheduler);
        if let (Some(local), Some(tracker)) = (local.as_ref(), tracker.as_mut()) {
            tracker.note_step(
                *local,
                exec.graph(),
                exec.configuration(),
                exec.last_changed(),
                exec.last_step_uniform(),
            );
        }
        if !step.round_completed {
            continue;
        }
        let round = exec.rounds();
        let clean = match (local.as_ref(), tracker.as_mut()) {
            (Some(local), Some(tracker)) => {
                tracker.is_legitimate(*local, exec.graph(), exec.configuration())
            }
            _ => checker
                .check_snapshot(exec.graph(), exec.configuration())
                .is_empty(),
        };
        let total_output_changes = exec.counters().total_output_changes();
        let (changed, undefined) = if total_output_changes == seen_output_changes {
            // No output changed in any step since the last boundary, so the
            // projected vector is bit-identical to the previous one.
            (false, prev_output.is_none())
        } else {
            seen_output_changes = total_output_changes;
            let output = exec.output_vector();
            let changed = output != prev_output;
            let undefined = output.is_none();
            prev_output = output;
            (changed, undefined)
        };
        if !clean || changed || undefined {
            last_bad_round = Some(round);
        }
        if round == end_round {
            final_violations = if clean {
                Vec::new()
            } else {
                checker.check_snapshot(exec.graph(), exec.configuration())
            };
        }
    }
    let clean_tail = match last_bad_round {
        None => horizon_rounds,
        Some(bad) => end_round.saturating_sub(bad),
    };
    let stabilization_round = if clean_tail >= min_clean_tail {
        Some(match last_bad_round {
            None => 0,
            Some(bad) => bad.saturating_sub(start_round),
        })
    } else {
        None
    };
    StaticStabilizationReport {
        stabilization_round,
        clean_tail_rounds: clean_tail,
        horizon_rounds,
        final_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::scheduler::SynchronousScheduler;
    use crate::signal::Signal;
    use rand::RngCore;

    /// Toy "consensus on max" algorithm over states 0..=3.
    struct MaxSpread;
    impl Algorithm for MaxSpread {
        type State = u8;
        type Output = u8;
        fn output(&self, s: &u8) -> Option<u8> {
            Some(*s)
        }
        fn transition(&self, s: &u8, sig: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
            sig.max_by_key(|x| *x).unwrap_or(*s).max(*s)
        }
    }

    /// Checker: all outputs equal.
    struct AgreementChecker;
    impl TaskChecker<MaxSpread> for AgreementChecker {
        fn check_snapshot(&self, _graph: &Graph, config: &[u8]) -> Vec<String> {
            if config.windows(2).all(|w| w[0] == w[1]) {
                Vec::new()
            } else {
                vec!["nodes disagree".to_string()]
            }
        }
        fn check_window(&self, _g: &Graph, changes: &[u64], _rounds: u64) -> Vec<String> {
            if changes.iter().any(|&c| c > 0) {
                vec!["output changed after stabilization".to_string()]
            } else {
                Vec::new()
            }
        }
        fn task_name(&self) -> &'static str {
            "agreement"
        }
    }

    #[test]
    fn clean_stabilization_report() {
        let g = Graph::path(5);
        let alg = MaxSpread;
        let mut exec = Execution::new(&alg, &g, vec![0, 0, 3, 0, 0], 1);
        let mut sched = SynchronousScheduler;
        let oracle = |_: &Graph, cfg: &[u8]| cfg.iter().all(|s| *s == 3);
        let report =
            measure_stabilization(&mut exec, &mut sched, &oracle, &AgreementChecker, 50, 10);
        assert!(report.is_clean());
        assert_eq!(report.stabilization_rounds, Some(2));
        assert_eq!(report.verification_rounds, 10);
    }

    #[test]
    fn exhausted_budget_is_reported() {
        let g = Graph::path(3);
        let alg = MaxSpread;
        let mut exec = Execution::new(&alg, &g, vec![0, 0, 0], 1);
        let mut sched = SynchronousScheduler;
        // never legitimate: waiting for a value that does not exist
        let oracle = |_: &Graph, cfg: &[u8]| cfg.iter().all(|s| *s == 9);
        let report = measure_stabilization(&mut exec, &mut sched, &oracle, &AgreementChecker, 5, 5);
        assert!(!report.is_clean());
        assert_eq!(report.stabilization_rounds, None);
        assert_eq!(report.verification_rounds, 0);
    }

    #[test]
    fn violations_in_window_are_caught() {
        // Use a deliberately wrong oracle that accepts a non-converged configuration;
        // the checker should then flag disagreement during the window.
        let g = Graph::path(4);
        let alg = MaxSpread;
        let mut exec = Execution::new(&alg, &g, vec![0, 0, 0, 2], 1);
        let mut sched = SynchronousScheduler;
        let oracle = |_: &Graph, _cfg: &[u8]| true; // bogus: immediately "legitimate"
        let report = measure_stabilization(&mut exec, &mut sched, &oracle, &AgreementChecker, 5, 4);
        assert!(!report.violations.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn default_window_check_accepts_anything() {
        struct Loose;
        impl TaskChecker<MaxSpread> for Loose {
            fn check_snapshot(&self, _: &Graph, _: &[u8]) -> Vec<String> {
                Vec::new()
            }
        }
        let checker = Loose;
        assert!(checker.check_window(&Graph::path(2), &[5, 5], 3).is_empty());
        assert!(checker.task_name().contains("Loose"));
    }
}
