//! # sa-model — the stone age computational model
//!
//! This crate implements the *stone age* (SA) model of distributed computing used by
//! Emek & Keren (PODC 2021), which is itself a simplified version of the model
//! introduced by Emek & Wattenhofer (PODC 2013).
//!
//! The model captures **anonymous, size-uniform** distributed algorithms executed by
//! **bounded-memory** nodes on a finite, connected, undirected graph. Nodes do not
//! exchange messages; instead, every node can *sense* which states appear in its
//! inclusive neighborhood (a binary signal per state — no counting, no sender
//! identification). The execution is driven by an adversarial **asynchronous
//! schedule**: at every discrete step the adversary activates an arbitrary non-empty
//! subset of nodes, subject only to the fairness requirement that every node is
//! activated infinitely often.
//!
//! The crate provides:
//!
//! * [`graph`] — graph representation plus bounded-diameter topology generators,
//! * [`algorithm`] — the [`Algorithm`] trait (state machine +
//!   output map) and the [`Signal`] type,
//! * [`scheduler`] — fair daemons: synchronous, uniformly random, central, round
//!   robin, adversarial laggard, and scripted schedules,
//! * [`executor`] — the execution driver with exact *round* (ϱ-operator) accounting,
//! * [`engine`] — the staged step pipeline (sense → evaluate → apply →
//!   account) behind the [`engine::StepEngine`] trait, with a serial and a
//!   sharded (worker-pool) implementation that produce bit-for-bit identical
//!   executions,
//! * [`explore`] — exhaustive exploration of the global configuration space
//!   for tiny instances, certifying closure and convergence with
//!   counterexample traces (the `sa verify` backend),
//! * [`fault`] — transient fault injection (state corruption),
//! * [`checker`] — task checkers and stabilization measurement,
//! * [`oracle`] — incremental (frontier-driven) legitimacy tracking for
//!   O(1)-per-round stabilization detection,
//! * [`trace`] — execution traces for debugging and visualisation,
//! * [`metrics`] — summary statistics helpers used by the experiment harness.
//!
//! ## Example
//!
//! ```
//! use sa_model::prelude::*;
//!
//! /// A toy 2-state algorithm: switch to `1` iff some neighbor is in state `1`.
//! struct Spread;
//! impl Algorithm for Spread {
//!     type State = u8;
//!     type Output = u8;
//!     fn output(&self, s: &u8) -> Option<u8> { Some(*s) }
//!     fn transition(&self, s: &u8, signal: &Signal<u8>, _rng: &mut dyn rand::RngCore) -> u8 {
//!         if *s == 1 || signal.senses(&1) { 1 } else { 0 }
//!     }
//! }
//!
//! let graph = Graph::path(5);
//! let mut init = vec![0u8; 5];
//! init[0] = 1;
//! let mut exec = Execution::new(&Spread, &graph, init, 42);
//! let mut sched = SynchronousScheduler;
//! while exec.rounds() < 10 {
//!     exec.step_with(&mut sched);
//! }
//! assert!(exec.configuration().iter().all(|s| *s == 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod binary;
pub mod checker;
pub mod engine;
pub mod executor;
pub mod explore;
pub mod fault;
pub mod graph;
pub mod json;
pub mod metrics;
pub mod oracle;
pub mod scheduler;
pub mod signal;
pub mod snapshot;
pub mod topology;
pub mod trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::algorithm::{
        Algorithm, LegitimacyOracle, MaskedOutcome, MaskedTransition, StateSpace,
    };
    pub use crate::checker::{StabilizationReport, TaskChecker};
    pub use crate::engine::EngineKind;
    pub use crate::executor::{Execution, ExecutionBuilder, SignalMode, StepOutcome};
    pub use crate::fault::{FaultInjector, FaultPlan};
    pub use crate::graph::{Graph, NodeId};
    pub use crate::oracle::{LegitimacyTracker, LocalPredicate};
    pub use crate::scheduler::{
        ActivationSet, AdversarialLaggardScheduler, CentralScheduler, RoundRobinScheduler,
        Scheduler, ScriptedScheduler, SynchronousScheduler, UniformRandomScheduler,
    };
    pub use crate::signal::{DenseSignal, Signal, SignalMask, StateIndex};
    pub use crate::snapshot::ExecutionSnapshot;
    pub use crate::topology::Topology;
}

pub use algorithm::{Algorithm, LegitimacyOracle, MaskedOutcome, MaskedTransition, StateSpace};
pub use engine::EngineKind;
pub use executor::{Execution, ExecutionBuilder, SignalMode};
pub use graph::{Graph, NodeId};
pub use scheduler::{ActivationSet, Scheduler};
pub use signal::{DenseSignal, Signal, SignalMask, StateIndex};
