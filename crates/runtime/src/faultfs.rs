//! Durable file I/O with deterministic disk-fault injection.
//!
//! Every daemon-owned file in the workspace (job manifests, unit results,
//! checkpoints, reports) is persisted through the four primitives here —
//! [`write()`], [`sync_file`], [`rename`], [`sync_dir`] — which together
//! implement the classic temp-file + fsync + atomic-rename + directory-fsync
//! discipline. Routing them through one chokepoint buys two things:
//!
//! 1. **Durability in one place.** The callers compose the primitives into
//!    `write_atomic` (see `sa_bench::jobs`); the fsync policy lives here.
//! 2. **A deterministic fault seam.** Each call is an *indexed I/O
//!    operation*: a process-wide counter assigns every (path-matching) call
//!    a sequence number, and a fault plan maps sequence numbers to fault
//!    kinds. A test can therefore replay a workload once per index and
//!    prove crash recovery under a kill/torn-write/ENOSPC at *every* point
//!    where the process touches disk — the same exhaustive-adversary idea
//!    the paper applies to transient state corruption, applied to our own
//!    persistence layer.
//!
//! # Fault plans
//!
//! A plan is installed from the `SA_IO_FAULTS` environment variable (read
//! once, at the first I/O call) or programmatically via [`install_plan`]
//! (tests). The syntax is:
//!
//! ```text
//! [match=<substring>;]<index>=<kind>[,<index>=<kind>...]
//! ```
//!
//! `<kind>` is one of `kill`, `torn`, `short`, `enospc`, `eio`. Only calls
//! whose path contains the optional `match=` substring consume an index (so
//! concurrent unrelated I/O does not shift the numbering); with no `match=`
//! every call counts. Example: `match=jobs/j1;7=torn` tears the 8th
//! operation touching `jobs/j1`.
//!
//! | kind | at a [`write()`] point | at a sync/rename point |
//! |---|---|---|
//! | `kill` | process aborts before any byte is written | process aborts before the op |
//! | `torn` | first half written and synced, then abort | process aborts before the op |
//! | `short` | first half written, **success reported** | reported as `EIO` |
//! | `enospc` | first half written, `ENOSPC` returned | `ENOSPC` returned |
//! | `eio` | nothing written, `EIO` returned | `EIO` returned |
//!
//! `kill`/`torn` abort the whole process (SIGABRT — indistinguishable from
//! SIGKILL for recovery purposes), so they are only usable against a
//! spawned child (the serve tests); `short`/`enospc`/`eio` are safe
//! in-process. With no plan installed the primitives are plain pass-through
//! I/O — the hot path is one relaxed atomic load.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// One injected fault kind (see the module docs for per-operation effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the process before the operation.
    Kill,
    /// Persist a torn prefix (half the bytes, synced), then abort.
    Torn,
    /// Write half the bytes but report success (silent data loss).
    Short,
    /// Fail with `ENOSPC` (writes leave a torn prefix behind).
    Enospc,
    /// Fail with `EIO` without touching the file.
    Eio,
}

impl FaultKind {
    fn parse(label: &str) -> Option<Self> {
        Some(match label {
            "kill" => FaultKind::Kill,
            "torn" => FaultKind::Torn,
            "short" => FaultKind::Short,
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            _ => return None,
        })
    }
}

struct Plan {
    matcher: Option<String>,
    faults: BTreeMap<u64, FaultKind>,
    /// Next sequence number; incremented once per matching operation.
    next: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

fn parse_plan(spec: &str) -> Result<Plan, String> {
    let mut matcher = None;
    let mut rest = spec.trim();
    if let Some(tail) = rest.strip_prefix("match=") {
        let (substr, remainder) = tail
            .split_once(';')
            .ok_or("expected ';' after match=<substring>")?;
        matcher = Some(substr.to_string());
        rest = remainder;
    }
    let mut faults = BTreeMap::new();
    for part in rest.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (idx, kind) = part
            .split_once('=')
            .ok_or_else(|| format!("expected <index>=<kind>, got \"{part}\""))?;
        let idx: u64 = idx
            .parse()
            .map_err(|_| format!("bad fault index \"{idx}\""))?;
        let kind = FaultKind::parse(kind)
            .ok_or_else(|| format!("unknown fault kind \"{kind}\" (kill|torn|short|enospc|eio)"))?;
        faults.insert(idx, kind);
    }
    Ok(Plan {
        matcher,
        faults,
        next: 0,
    })
}

/// Installs a fault plan programmatically (tests), replacing any existing
/// plan and resetting the operation counter. See the module docs for the
/// plan syntax.
pub fn install_plan(spec: &str) -> Result<(), String> {
    let plan = parse_plan(spec)?;
    ensure_env_loaded();
    *PLAN.lock().unwrap() = Some(plan);
    ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Removes any installed fault plan; subsequent I/O is plain pass-through.
pub fn clear_plan() {
    ensure_env_loaded();
    *PLAN.lock().unwrap() = None;
    ACTIVE.store(false, Ordering::Release);
}

fn ensure_env_loaded() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("SA_IO_FAULTS") {
            if spec.trim().is_empty() {
                return;
            }
            match parse_plan(&spec) {
                Ok(plan) => {
                    *PLAN.lock().unwrap() = Some(plan);
                    ACTIVE.store(true, Ordering::Release);
                }
                Err(e) => eprintln!("sa: warning: ignoring invalid SA_IO_FAULTS: {e}"),
            }
        }
    });
}

/// Consumes one fault-point index for `path` and returns the fault planned
/// there, if any.
fn fault_at(path: &Path) -> Option<FaultKind> {
    ensure_env_loaded();
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let mut guard = PLAN.lock().unwrap();
    let plan = guard.as_mut()?;
    if let Some(matcher) = &plan.matcher {
        if !path.to_string_lossy().contains(matcher.as_str()) {
            return None; // non-matching ops do not consume an index
        }
    }
    let idx = plan.next;
    plan.next += 1;
    plan.faults.get(&idx).copied()
}

fn abort(path: &Path, what: &str) -> ! {
    // Flush the reason first so the harness can attribute the death.
    eprintln!(
        "sa: faultfs: injected {what} at {}; aborting",
        path.display()
    );
    std::process::abort();
}

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5) // EIO
}

/// Writes `bytes` to `path` (creating or truncating it) — one indexed fault
/// point. Does **not** fsync; pair with [`sync_file`].
pub fn write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match fault_at(path) {
        None => fs::write(path, bytes),
        Some(FaultKind::Kill) => abort(path, "kill-at-write"),
        Some(FaultKind::Torn) => {
            let mut file = fs::File::create(path)?;
            file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = file.sync_all();
            abort(path, "torn write");
        }
        Some(FaultKind::Short) => {
            let mut file = fs::File::create(path)?;
            file.write_all(&bytes[..bytes.len() / 2])?;
            Ok(()) // the lie: success with half the payload on disk
        }
        Some(FaultKind::Enospc) => {
            let mut file = fs::File::create(path)?;
            file.write_all(&bytes[..bytes.len() / 2])?;
            Err(enospc())
        }
        Some(FaultKind::Eio) => Err(eio()),
    }
}

/// `fsync`s the file at `path` — one indexed fault point.
pub fn sync_file(path: &Path) -> io::Result<()> {
    match fault_at(path) {
        None => fs::File::open(path)?.sync_all(),
        Some(FaultKind::Kill) | Some(FaultKind::Torn) => abort(path, "kill-at-fsync"),
        Some(FaultKind::Short) | Some(FaultKind::Eio) => Err(eio()),
        Some(FaultKind::Enospc) => Err(enospc()),
    }
}

/// Renames `from` to `to` (atomic within a filesystem) — one indexed fault
/// point, keyed on the destination path.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match fault_at(to) {
        None => fs::rename(from, to),
        Some(FaultKind::Kill) | Some(FaultKind::Torn) => abort(to, "kill-at-rename"),
        Some(FaultKind::Short) | Some(FaultKind::Eio) => Err(eio()),
        Some(FaultKind::Enospc) => Err(enospc()),
    }
}

/// `fsync`s a directory, making a completed rename inside it durable — one
/// indexed fault point.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match fault_at(dir) {
        None => fs::File::open(dir)?.sync_all(),
        Some(FaultKind::Kill) | Some(FaultKind::Torn) => abort(dir, "kill-at-dirsync"),
        Some(FaultKind::Short) | Some(FaultKind::Eio) => Err(eio()),
        Some(FaultKind::Enospc) => Err(enospc()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sa-faultfs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn plan_parsing_accepts_matcher_and_multiple_points() {
        let plan = parse_plan("match=jobs/j1;0=kill,3=torn,7=enospc").unwrap();
        assert_eq!(plan.matcher.as_deref(), Some("jobs/j1"));
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[&3], FaultKind::Torn);
        assert!(parse_plan("nonsense").is_err());
        assert!(parse_plan("1=explode").is_err());
        assert!(parse_plan("match=x").is_err(), "match without ';' rejected");
    }

    #[test]
    fn injected_faults_fire_at_indexed_matching_ops_only() {
        let dir = temp("inject");
        fs::create_dir_all(&dir).unwrap();
        let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
        // Index 1 (the second matching op) fails EIO; index 2 shorts.
        install_plan(&format!("match={tag};1=eio,2=short")).unwrap();
        let unrelated =
            std::env::temp_dir().join(format!("sa-faultfs-other-{}", std::process::id()));
        write(&unrelated, b"x").unwrap(); // does not consume an index
        write(&dir.join("a"), b"payload!").unwrap(); // index 0: clean
        let err = write(&dir.join("b"), b"payload!").unwrap_err(); // index 1
        assert_eq!(err.raw_os_error(), Some(5));
        write(&dir.join("c"), b"payload!").unwrap(); // index 2: short "success"
        assert_eq!(fs::read(dir.join("c")).unwrap().len(), 4);
        clear_plan();
        write(&dir.join("d"), b"payload!").unwrap();
        assert_eq!(fs::read(dir.join("d")).unwrap(), b"payload!");
        fs::remove_file(&unrelated).ok();
        fs::remove_dir_all(&dir).ok();
    }
}
