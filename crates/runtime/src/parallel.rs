//! Multi-seed trial fan-out across OS threads.
//!
//! The experiment sweeps repeat every configuration across many independent
//! seeds; the trials share nothing, so they parallelize perfectly. The build
//! environment has no access to crates.io (so no `rayon`); this module
//! provides the one primitive the harness needs — an order-preserving parallel
//! map — on top of `std::thread::scope`, with work distributed through an
//! atomic cursor so uneven trial durations balance automatically.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads used by [`par_map`]: the machine's available
/// parallelism, overridable through the `SA_BENCH_THREADS` environment
/// variable (set it to `1` to make sweeps fully sequential).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SA_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, returning the results in input
/// order.
///
/// Work is handed out one item at a time through an atomic cursor, so long
/// trials do not leave threads idle behind them. Falls back to a plain
/// sequential map when only one worker is available or the input is tiny.
///
/// # Panics
///
/// Propagates a panic from `f` (the whole map panics once the scope joins).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return chunk;
                        }
                        chunk.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        let mut results: Vec<Option<R>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("trial worker panicked") {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every index visited exactly once"))
            .collect()
    })
}

/// A shared cancellation flag for [`par_map_cancellable`].
///
/// Workers consult the token between items: once cancelled, no *new* item is
/// started (items already in flight run to completion — work units are
/// expected to reach a safe checkpoint on their own, e.g. through the sweep
/// runner's per-unit checkpoint policy). The token is cheap to share by
/// reference across threads and can be triggered from inside a work item,
/// from a signal handler thread, or from a supervising server loop.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: no new work items start after this returns.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Like [`par_map`], but stops handing out new items once `cancel` fires.
///
/// Returns one `Option<R>` per input item, in input order: `Some` for items
/// that ran (items already started when cancellation hit still complete),
/// `None` for items that were never started. The caller distinguishes a
/// completed sweep (`all Some`) from an interrupted one and persists the
/// un-run items for a later resume.
pub fn par_map_cancellable<T, R, F>(items: &[T], cancel: &CancelToken, f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .map(|item| (!cancel.is_cancelled()).then(|| f(item)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk = Vec::new();
                    loop {
                        if cancel.is_cancelled() {
                            return chunk;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return chunk;
                        }
                        chunk.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        let mut results: Vec<Option<R>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("trial worker panicked") {
                results[i] = Some(r);
            }
        }
        results
    })
}

/// Convenience wrapper running `f` once per seed in `0..seeds`, in parallel.
pub fn par_seeds<R, F>(seeds: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seed_list: Vec<u64> = (0..seeds).collect();
    par_map(&seed_list, |&seed| f(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_seeds_runs_each_seed_once() {
        let results = par_seeds(17, |seed| seed * seed);
        assert_eq!(results.len(), 17);
        for (seed, value) in results.iter().enumerate() {
            assert_eq!(*value, (seed * seed) as u64);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn cancellable_map_without_cancellation_equals_par_map() {
        let items: Vec<u64> = (0..37).collect();
        let token = CancelToken::new();
        let results = par_map_cancellable(&items, &token, |&x| x + 1);
        assert!(results.iter().all(Option::is_some));
        let unwrapped: Vec<u64> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(unwrapped, par_map(&items, |&x| x + 1));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn cancellation_from_inside_a_work_item_skips_the_tail() {
        let items: Vec<usize> = (0..64).collect();
        let token = CancelToken::new();
        let started = AtomicUsize::new(0);
        let results = par_map_cancellable(&items, &token, |&i| {
            let k = started.fetch_add(1, Ordering::Relaxed);
            if k >= 5 {
                token.cancel();
            }
            i * 2
        });
        let done = results.iter().filter(|r| r.is_some()).count();
        assert!(done >= 5, "at least the first items ran ({done})");
        assert!(
            done < items.len(),
            "cancellation must leave some items un-run"
        );
        // completed items carry correct results at their original indices
        for (i, r) in results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i * 2);
            }
        }
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        let items: Vec<u32> = (0..10).collect();
        let token = CancelToken::new();
        token.cancel();
        let results = par_map_cancellable(&items, &token, |&x| x);
        assert!(results.iter().all(Option::is_none));
    }
}
