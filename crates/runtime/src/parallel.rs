//! Multi-seed trial fan-out across OS threads.
//!
//! The experiment sweeps repeat every configuration across many independent
//! seeds; the trials share nothing, so they parallelize perfectly. The build
//! environment has no access to crates.io (so no `rayon`); this module
//! provides the one primitive the harness needs — an order-preserving parallel
//! map — on top of `std::thread::scope`, with work distributed through an
//! atomic cursor so uneven trial durations balance automatically.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`par_map`]: the machine's available
/// parallelism, overridable through the `SA_BENCH_THREADS` environment
/// variable (set it to `1` to make sweeps fully sequential).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("SA_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, returning the results in input
/// order.
///
/// Work is handed out one item at a time through an atomic cursor, so long
/// trials do not leave threads idle behind them. Falls back to a plain
/// sequential map when only one worker is available or the input is tiny.
///
/// # Panics
///
/// Propagates a panic from `f` (the whole map panics once the scope joins).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return chunk;
                        }
                        chunk.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        let mut results: Vec<Option<R>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("trial worker panicked") {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every index visited exactly once"))
            .collect()
    })
}

/// Convenience wrapper running `f` once per seed in `0..seeds`, in parallel.
pub fn par_seeds<R, F>(seeds: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seed_list: Vec<u64> = (0..seeds).collect();
    par_map(&seed_list, |&seed| f(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_seeds_runs_each_seed_once() {
        let results = par_seeds(17, |seed| seed * seed);
        assert_eq!(results.len(), 17);
        for (seed, value) in results.iter().enumerate() {
            assert_eq!(*value, (seed * seed) as u64);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
