//! A persistent worker pool for intra-execution sharding.
//!
//! The sharded step engine splits every step's activation set across a fixed
//! set of workers. Steps are short (tens of microseconds to a few
//! milliseconds), so spawning threads per step would dominate the work;
//! [`WorkerPool`] keeps its workers parked on a condvar between steps and
//! makes a step cost one broadcast (a mutex'd epoch bump plus wakeups).
//!
//! [`WorkerPool::broadcast`] runs a borrowed closure, which requires erasing
//! its lifetime to hand it to the long-lived workers. Soundness rests on two
//! invariants, both enforced under the single state mutex:
//!
//! 1. tasks are *claimed* under the lock, and a claim is only possible while
//!    the claiming epoch is current;
//! 2. the epoch can only advance (i.e. `broadcast` can only return and a new
//!    job be installed) once every claimed task has finished and been
//!    accounted.
//!
//! Together these guarantee no worker dereferences the job closure after
//! `broadcast` returns, so the borrow it erases is always live.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased broadcast job. Only ever dereferenced between the epoch
/// bump that installs it and the completion of its last task (see the module
/// docs for why that keeps the erased borrow live).
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
}

struct State {
    /// Bumped once per broadcast; workers use it to tell fresh jobs apart.
    epoch: u64,
    job: Option<Job>,
    /// Next unclaimed task index of the current job.
    next: usize,
    /// Claimed-or-unclaimed tasks not yet finished.
    remaining: usize,
    /// First panic payload raised by a task of the current job.
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Workers that finished thread startup and reached the parked loop.
    started: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the broadcaster that `remaining` reached zero.
    done_cv: Condvar,
}

/// A fixed-size pool of parked worker threads executing broadcast jobs.
///
/// `WorkerPool::new(t)` provides `t` lanes of parallelism: `t − 1` background
/// threads plus the broadcasting thread itself, which participates in every
/// job. Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool offering `threads` lanes of parallelism (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                next: 0,
                remaining: 0,
                panic_payload: None,
                started: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sa-shard-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn shard worker")
            })
            .collect();
        let pool = WorkerPool { shared, workers };
        // Wait for every worker to finish its (allocating) thread startup and
        // reach the parked loop, so a constructed pool is fully quiescent —
        // the zero-allocation property of the warm step loop depends on no
        // startup work trailing into the first steps.
        let mut st = pool.shared.state.lock().expect("pool state poisoned");
        while st.started < pool.workers.len() {
            st = pool.shared.done_cv.wait(st).expect("pool state poisoned");
        }
        drop(st);
        pool
    }

    /// Total lanes of parallelism (background workers + the caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `job(0), …, job(tasks − 1)` across the pool and returns once all
    /// of them have finished. The calling thread participates. Tasks are
    /// claimed dynamically, so uneven task durations balance automatically.
    ///
    /// Must not be called reentrantly from within a job (it would deadlock on
    /// the in-flight epoch).
    ///
    /// # Panics
    ///
    /// If any task panics, the panic is re-raised on the calling thread once
    /// every task has finished.
    pub fn broadcast(&self, tasks: usize, job: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() || tasks == 1 {
            for i in 0..tasks {
                job(i);
            }
            return;
        }
        // Erase the borrow's lifetime to hand it to the parked workers; the
        // claim/epoch protocol (module docs) keeps it live for exactly as
        // long as any worker can reach it.
        #[allow(unsafe_code)]
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        let epoch = {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            debug_assert_eq!(st.remaining, 0, "reentrant broadcast");
            st.epoch += 1;
            st.job = Some(Job { f: erased, tasks });
            st.next = 0;
            st.remaining = tasks;
            st.panic_payload = None;
            self.shared.work_cv.notify_all();
            st.epoch
        };
        run_claimed_tasks(&self.shared, epoch, job, tasks);
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        if let Some(payload) = st.panic_payload.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims and runs tasks of epoch `epoch` until none are left.
///
/// The epoch check under the claim lock is load-bearing for soundness: a
/// worker that read its job just before the job's broadcast completed could
/// otherwise claim task indices of the *next* epoch and run them against the
/// previous (expired) closure. A claimed task keeps `remaining > 0`, which
/// blocks the epoch from advancing until the task is accounted — so a
/// successful claim guarantees the closure outlives the call.
fn run_claimed_tasks(shared: &Shared, epoch: u64, f: &(dyn Fn(usize) + Sync), tasks: usize) {
    loop {
        let i = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            if st.epoch != epoch || st.next >= tasks {
                return;
            }
            let i = st.next;
            st.next += 1;
            i
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(i)));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if let Err(payload) = result {
            st.panic_payload.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    {
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.started += 1;
        shared.done_cv.notify_all();
    }
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job;
                }
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        if let Some(job) = job {
            run_claimed_tasks(shared, seen, job.f, job.tasks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.broadcast(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 100));
    }

    #[test]
    fn broadcast_sees_borrowed_mutable_state_through_sync_cells() {
        let pool = WorkerPool::new(3);
        let cells: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(0)).collect();
        pool.broadcast(cells.len(), &|i| {
            *cells[i].lock().unwrap() = (i as u64) * 10;
        });
        let values: Vec<u64> = cells.iter().map(|c| *c.lock().unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_pool_degrades_to_inline_execution() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicUsize::new(0);
        pool.broadcast(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn task_panics_propagate_to_the_broadcaster() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(8, &|i| {
                if i == 5 {
                    panic!("task five exploded");
                }
            });
        }));
        let payload = result.expect_err("the panic must propagate");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "task five exploded");
        // The pool remains usable after a panicked job.
        let ran = AtomicUsize::new(0);
        pool.broadcast(8, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new(8);
        pool.broadcast(8, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn rapid_rebroadcasts_never_run_a_stale_closure() {
        // Regression: a worker waking up late for broadcast N must not claim
        // task indices of broadcast N+1 and run them against N's (expired)
        // closure. Each round writes its round number; any stale-closure
        // execution would overwrite a cell with an old round value.
        let pool = WorkerPool::new(4);
        let cells: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(0)).collect();
        for round in 1..=500u64 {
            pool.broadcast(cells.len(), &|i| {
                *cells[i].lock().unwrap() = round;
            });
            for cell in &cells {
                assert_eq!(*cell.lock().unwrap(), round, "stale closure ran");
            }
        }
    }
}
