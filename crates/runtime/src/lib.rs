//! # sa-runtime — shared thread-pool runtime
//!
//! The workspace has two distinct parallel workloads:
//!
//! * **trial fan-out** — experiment sweeps run thousands of *independent*
//!   executions (one per seed); [`parallel::par_map`] spreads them across OS
//!   threads with an atomic work cursor (promoted here from `sa_bench` so the
//!   simulator crates can use it too), and
//! * **intra-execution sharding** — the sharded step engine splits *one*
//!   execution's activation set across a persistent [`pool::WorkerPool`],
//!   whose workers stay parked between steps so a step costs a broadcast,
//!   not a thread spawn.
//!
//! The build environment has no access to crates.io (so no `rayon`); both
//! primitives are built on `std::thread` only. A `rayon` upgrade remains a
//! drop-in once a registry is available.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod faultfs;
pub mod parallel;
pub mod pool;
