//! Module `Restart` (Section 3.3, Theorem 3.1).
//!
//! `Restart` is the synchronous reset primitive shared by AlgMIS and AlgLE. It
//! consists of the `2D + 1` states `σ(0), …, σ(2D)`, where `σ(0)` is the entry state
//! and `σ(2D)` the exit state. Its guarantee (Theorem 3.1): if some node is in a
//! Restart state at time `t₀`, then there is a time `t ≤ t₀ + O(D)` at which **all**
//! nodes exit Restart **concurrently**, each moving to the host algorithm's initial
//! state `q₀*` — giving the host a coordinated fresh start.
//!
//! The three rules, for a node `v` with sensed state set `S_t(v)`:
//!
//! 1. if `S_t(v)` contains a Restart state but also a non-Restart state, then
//!    `v → σ(0)`;
//! 2. if `S_t(v)` consists of Restart states only and `S_t(v) ≠ {σ(2D)}`, then
//!    `v → σ(i_min + 1)` where `i_min` is the smallest sensed index;
//! 3. if `S_t(v) = {σ(2D)}`, then `v → q₀*`.
//!
//! This module implements Restart as a *generic wrapper* [`WithRestart`] around any
//! [`RestartableAlgorithm`] host: the composite state is either a Restart state or a
//! host state, and the host can request a restart from its own transition (this is
//! how the detection modules of AlgMIS / AlgLE "invoke Restart").

use rand::RngCore;
use sa_model::algorithm::{Algorithm, StateSpace};
use sa_model::signal::Signal;
use std::fmt::Debug;
use std::hash::Hash;

/// The outcome of one host step: continue with a new host state, or invoke `Restart`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostOutcome<S> {
    /// Continue the host algorithm in the given state.
    Continue(S),
    /// A fault was detected: enter `Restart` at `σ(0)`.
    Restart,
}

/// A synchronous algorithm that can be wrapped by module `Restart`.
///
/// The host only ever sees host states: while any node of the neighborhood is inside
/// Restart, the wrapper handles the transition and the host's `step` is not called.
pub trait RestartableAlgorithm: Sync {
    /// Host state set (bounds mirror [`Algorithm::State`], including the
    /// thread-safety the sharded step engine requires).
    type State: Clone + Eq + Ord + Hash + Debug + Send + Sync;
    /// Output values of the task the host solves.
    type Output: Clone + Eq + Debug;

    /// The designated initial state `q₀*` that every node adopts when Restart exits.
    fn initial_state(&self) -> Self::State;

    /// The output map of the host.
    fn output(&self, state: &Self::State) -> Option<Self::Output>;

    /// One synchronous step of the host. Returning [`HostOutcome::Restart`] sends the
    /// node to `σ(0)` (detection of an illegal configuration).
    fn step(
        &self,
        state: &Self::State,
        signal: &Signal<Self::State>,
        rng: &mut dyn RngCore,
    ) -> HostOutcome<Self::State>;

    /// Host states to enumerate for state-space accounting (used by experiments; hosts
    /// with a large product state space may enumerate lazily or return a
    /// representative subset — see each host's documentation).
    fn states(&self) -> Vec<Self::State>;

    /// Whether [`RestartableAlgorithm::step`] is a pure function of
    /// `(state, signal)` that never reads the RNG (see
    /// [`Algorithm::transition_is_deterministic`]). Hosts that toss coins —
    /// like the AlgLE / AlgMIS hosts — keep the default `false`.
    fn step_is_deterministic(&self) -> bool {
        false
    }

    /// Host algorithm name.
    fn name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

/// A composite state: inside module Restart, or running the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RestartState<S> {
    /// Inside Restart, at `σ(index)`.
    Restart(u32),
    /// Running the host algorithm.
    Host(S),
}

impl<S> RestartState<S> {
    /// Whether the node is currently inside module Restart.
    pub fn is_restarting(&self) -> bool {
        matches!(self, RestartState::Restart(_))
    }

    /// The host state, if the node is running the host.
    pub fn host(&self) -> Option<&S> {
        match self {
            RestartState::Host(s) => Some(s),
            RestartState::Restart(_) => None,
        }
    }
}

/// The Restart wrapper: module Restart composed with a host algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WithRestart<H> {
    host: H,
    diameter_bound: usize,
}

impl<H: RestartableAlgorithm> WithRestart<H> {
    /// Wraps `host` with a Restart module sized for diameter bound `D` (states
    /// `σ(0) … σ(2D)`).
    pub fn new(host: H, diameter_bound: usize) -> Self {
        WithRestart {
            host,
            diameter_bound,
        }
    }

    /// The wrapped host.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// The diameter bound `D`.
    pub fn diameter_bound(&self) -> usize {
        self.diameter_bound
    }

    /// The exit index `2D`.
    pub fn exit_index(&self) -> u32 {
        2 * self.diameter_bound as u32
    }

    /// The number of Restart states, `2D + 1`.
    pub fn restart_state_count(&self) -> usize {
        2 * self.diameter_bound + 1
    }
}

impl<H: RestartableAlgorithm> Algorithm for WithRestart<H> {
    type State = RestartState<H::State>;
    type Output = H::Output;

    fn output(&self, state: &Self::State) -> Option<H::Output> {
        match state {
            RestartState::Restart(_) => None,
            RestartState::Host(s) => self.host.output(s),
        }
    }

    fn transition(
        &self,
        state: &Self::State,
        signal: &Signal<Self::State>,
        rng: &mut dyn RngCore,
    ) -> Self::State {
        let exit = self.exit_index();
        let senses_restart = signal.senses_any(|s| s.is_restarting());
        let senses_host = signal.senses_any(|s| !s.is_restarting());

        if senses_restart {
            if senses_host {
                // Rule 1: mixed neighborhood -> (re)enter at σ(0).
                return RestartState::Restart(0);
            }
            // Only Restart states are sensed.
            let min_index = signal
                .min_by_key(|s| match s {
                    RestartState::Restart(i) => *i,
                    RestartState::Host(_) => u32::MAX,
                })
                .expect("signal contains at least the node's own state");
            if min_index == exit {
                // Rule 3: everyone is at σ(2D) -> exit concurrently to q₀*.
                return RestartState::Host(self.host.initial_state());
            }
            // Rule 2: advance to σ(i_min + 1).
            return RestartState::Restart((min_index + 1).min(exit));
        }

        // No Restart state anywhere in the neighborhood: run the host.
        let own = match state {
            RestartState::Host(s) => s,
            RestartState::Restart(_) => unreachable!("own state is in the signal"),
        };
        let host_signal: Signal<H::State> = signal.filter_map(|s| s.host().cloned());
        match self.host.step(own, &host_signal, rng) {
            HostOutcome::Continue(next) => RestartState::Host(next),
            HostOutcome::Restart => RestartState::Restart(0),
        }
    }

    fn dense_state_space(&self) -> Option<Vec<Self::State>> {
        // Restart adds 2D + 1 states to the host's enumeration; both are O(D),
        // so the composite stays comfortably dense-indexable.
        Some(self.states())
    }

    fn transition_is_deterministic(&self) -> bool {
        // The Restart rules themselves are deterministic; the composite is
        // deterministic exactly when the host's step is.
        self.host.step_is_deterministic()
    }

    fn name(&self) -> &'static str {
        self.host.name()
    }
}

impl<H: RestartableAlgorithm> StateSpace for WithRestart<H> {
    fn states(&self) -> Vec<Self::State> {
        let mut states: Vec<Self::State> =
            (0..=self.exit_index()).map(RestartState::Restart).collect();
        states.extend(self.host.states().into_iter().map(RestartState::Host));
        states
    }
}

/// A trivial host used to exercise module Restart in isolation (experiment E4 and the
/// Theorem 3.1 tests): a clock modulo `period` that advances in lockstep and never
/// detects faults on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrivialHost {
    period: u32,
}

impl TrivialHost {
    /// Creates the trivial host with the given clock period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "period must be positive");
        TrivialHost { period }
    }
}

impl RestartableAlgorithm for TrivialHost {
    type State = u32;
    type Output = u32;

    fn initial_state(&self) -> u32 {
        0
    }

    fn output(&self, state: &u32) -> Option<u32> {
        Some(*state)
    }

    fn step(&self, state: &u32, _signal: &Signal<u32>, _rng: &mut dyn RngCore) -> HostOutcome<u32> {
        HostOutcome::Continue((state + 1) % self.period)
    }

    fn states(&self) -> Vec<u32> {
        (0..self.period).collect()
    }

    fn step_is_deterministic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "trivial-host"
    }
}

/// Runs a synchronous execution from an arbitrary configuration and returns the round
/// at which all nodes exited Restart concurrently (i.e. the first round at which no
/// node is in a Restart state while some node was in one before), or `None` if that
/// never happens within `max_rounds`. Also verifies the exit was *concurrent*: on the
/// exit step, every node that was in Restart leaves it, and every node ends up in the
/// host initial state.
///
/// This is the measurement harness for Theorem 3.1 (experiment E4).
pub fn measure_restart_exit<H: RestartableAlgorithm + Clone>(
    wrapper: &WithRestart<H>,
    graph: &sa_model::graph::Graph,
    initial: Vec<RestartState<H::State>>,
    seed: u64,
    max_rounds: u64,
) -> Option<RestartExitReport> {
    use sa_model::executor::Execution;
    use sa_model::scheduler::SynchronousScheduler;

    let mut exec = Execution::new(wrapper, graph, initial, seed);
    let mut sched = SynchronousScheduler;
    let initially_restarting = exec.configuration().iter().any(RestartState::is_restarting);
    if !initially_restarting {
        return Some(RestartExitReport {
            exit_round: 0,
            concurrent: true,
            uniform_exit: true,
        });
    }
    for round in 1..=max_rounds {
        let before: Vec<bool> = exec
            .configuration()
            .iter()
            .map(RestartState::is_restarting)
            .collect();
        exec.step_with(&mut sched);
        let after: Vec<bool> = exec
            .configuration()
            .iter()
            .map(RestartState::is_restarting)
            .collect();
        if after.iter().all(|r| !r) {
            // everyone is out; check the exit was concurrent and uniform
            let concurrent = before.iter().all(|r| *r);
            let uniform_exit = exec
                .configuration()
                .iter()
                .all(|s| s.host() == Some(&wrapper.host().initial_state()));
            return Some(RestartExitReport {
                exit_round: round,
                concurrent,
                uniform_exit,
            });
        }
    }
    None
}

/// Result of [`measure_restart_exit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartExitReport {
    /// The synchronous round at which the last Restart state disappeared.
    pub exit_round: u64,
    /// Whether every node was still inside Restart on the round before the exit
    /// (i.e. the exit was concurrent, as Theorem 3.1 promises).
    pub concurrent: bool,
    /// Whether every node ended in the host's initial state `q₀*`.
    pub uniform_exit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use sa_model::executor::Execution;
    use sa_model::graph::Graph;
    use sa_model::scheduler::SynchronousScheduler;

    type TState = RestartState<u32>;

    fn wrapper(d: usize) -> WithRestart<TrivialHost> {
        WithRestart::new(TrivialHost::new(7), d)
    }

    #[test]
    fn state_space_is_host_plus_2d_plus_1() {
        let w = wrapper(3);
        assert_eq!(w.restart_state_count(), 7);
        assert_eq!(w.state_count(), 7 + 7);
        assert_eq!(w.exit_index(), 6);
    }

    #[test]
    fn rule1_mixed_neighborhood_enters_at_zero() {
        let w = wrapper(2);
        let mut rng = rand::thread_rng();
        // a host node sensing a restart neighbor
        let sig = Signal::from_states(vec![TState::Host(3), TState::Restart(2)]);
        assert_eq!(
            w.transition(&TState::Host(3), &sig, &mut rng),
            TState::Restart(0)
        );
        // a restart node sensing a host neighbor also goes back to σ(0)
        assert_eq!(
            w.transition(&TState::Restart(2), &sig, &mut rng),
            TState::Restart(0)
        );
    }

    #[test]
    fn rule2_advances_to_min_plus_one() {
        let w = wrapper(2); // exit index 4
        let mut rng = rand::thread_rng();
        let sig = Signal::from_states(vec![TState::Restart(3), TState::Restart(1)]);
        assert_eq!(
            w.transition(&TState::Restart(3), &sig, &mut rng),
            TState::Restart(2)
        );
        let sig = Signal::from_states(vec![TState::Restart(4), TState::Restart(2)]);
        assert_eq!(
            w.transition(&TState::Restart(4), &sig, &mut rng),
            TState::Restart(3)
        );
    }

    #[test]
    fn rule3_exits_to_host_initial_state() {
        let w = wrapper(2);
        let mut rng = rand::thread_rng();
        let sig = Signal::from_states(vec![TState::Restart(4)]);
        assert_eq!(
            w.transition(&TState::Restart(4), &sig, &mut rng),
            TState::Host(0)
        );
    }

    #[test]
    fn host_runs_when_no_restart_sensed() {
        let w = wrapper(2);
        let mut rng = rand::thread_rng();
        let sig = Signal::from_states(vec![TState::Host(3), TState::Host(5)]);
        assert_eq!(
            w.transition(&TState::Host(3), &sig, &mut rng),
            TState::Host(4)
        );
    }

    #[test]
    fn output_is_none_inside_restart() {
        let w = wrapper(1);
        assert_eq!(w.output(&TState::Restart(1)), None);
        assert_eq!(w.output(&TState::Host(5)), Some(5));
    }

    #[test]
    fn theorem_3_1_exit_is_concurrent_and_within_3d() {
        // From many arbitrary initial configurations containing at least one Restart
        // state, all nodes exit concurrently within 3D + 1 synchronous rounds.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for d in 1..=5usize {
            let w = wrapper(d);
            let exit = w.exit_index();
            for (gi, graph) in [
                Graph::complete(4),
                Graph::path(d + 1),
                Graph::cycle((2 * d).max(3)),
                Graph::star(6),
            ]
            .iter()
            .enumerate()
            {
                // skip graphs whose diameter exceeds the bound
                if graph.diameter() > d {
                    continue;
                }
                for trial in 0..10u64 {
                    let init: Vec<TState> = (0..graph.node_count())
                        .map(|_| {
                            if rng.gen_bool(0.6) {
                                TState::Restart(rng.gen_range(0..=exit))
                            } else {
                                TState::Host(rng.gen_range(0..7))
                            }
                        })
                        .collect();
                    // ensure at least one Restart state is present
                    let mut init = init;
                    init[0] = TState::Restart(rng.gen_range(0..=exit));
                    let report = measure_restart_exit(&w, graph, init, trial, 100)
                        .expect("restart must terminate");
                    assert!(report.concurrent, "d={d} graph {gi} trial {trial}");
                    assert!(report.uniform_exit, "d={d} graph {gi} trial {trial}");
                    assert!(
                        report.exit_round <= (3 * d + 1) as u64 + 1,
                        "d={d} graph {gi} trial {trial}: exit took {} rounds",
                        report.exit_round
                    );
                }
            }
        }
    }

    #[test]
    fn restart_free_execution_advances_host_in_lockstep() {
        let w = wrapper(2);
        let g = Graph::complete(3);
        let init = vec![TState::Host(0); 3];
        let mut exec = Execution::new(&w, &g, init, 1);
        let mut sched = SynchronousScheduler;
        exec.run_rounds(&mut sched, 5);
        assert!(exec.configuration().iter().all(|s| *s == TState::Host(5)));
    }

    #[test]
    fn single_restart_node_drags_in_the_whole_graph() {
        let w = wrapper(2);
        let g = Graph::path(4);
        let mut init = vec![TState::Host(2); 4];
        init[0] = TState::Restart(0);
        let report = measure_restart_exit(&w, &g, init, 0, 100).expect("terminates");
        assert!(report.concurrent);
        assert!(report.uniform_exit);
    }

    #[test]
    fn no_restart_in_initial_configuration_reports_round_zero() {
        let w = wrapper(1);
        let g = Graph::path(3);
        let init = vec![TState::Host(1); 3];
        let report = measure_restart_exit(&w, &g, init, 0, 10).expect("trivially done");
        assert_eq!(report.exit_round, 0);
    }
}
