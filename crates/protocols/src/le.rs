//! AlgLE — the synchronous self-stabilizing leader election algorithm
//! (Section 3.2, Theorem 1.3).
//!
//! AlgLE progresses in *epochs* of `D` rounds; every node tracks the round number
//! within the current epoch and invokes Restart on any inconsistency with a neighbor.
//! The execution has two stages:
//!
//! * **Computation stage** — runs modules `RandCount` and `Elect`.
//!   * `Elect`: every node starts as a candidate. At each epoch start the surviving
//!     candidates toss fair coins; the epoch's `D` rounds are used to gossip the OR
//!     of the candidates' coins (`I_C`). A candidate whose own coin was 0 while
//!     `I_C = 1` withdraws. At least one candidate always survives, and any two
//!     candidates are separated with probability ½ per epoch.
//!   * `RandCount`: a probabilistic counter. Every node holds a `flag` (initially 1)
//!     and clears it with probability `p₀` at each epoch start; the epoch gossips the
//!     OR of the flags (`I_flag`). When `I_flag = 0` the computation stage halts and
//!     the surviving candidates mark themselves leaders. The number of epochs is
//!     `Θ(log n)` in expectation and whp, enough for a single candidate to survive whp.
//! * **Verification stage** — runs module `DetectLE` forever: at each epoch start
//!   every leader draws a random temporary identifier from `[k]`; the epoch spreads
//!   the first identifier each node encounters. A node that encounters two different
//!   identifiers (two leaders, probability ≥ 1 − 1/k per epoch) or none at all (zero
//!   leaders, deterministic) invokes Restart.
//!
//! The composite algorithm [`AlgLe`] = `WithRestart<LeHost>` is a synchronous
//! self-stabilizing LE algorithm with `O(D)` states stabilizing in `O(D·log n)`
//! rounds in expectation and whp.

use crate::restart::{HostOutcome, RestartState, RestartableAlgorithm, WithRestart};
use rand::Rng;
use rand::RngCore;
use sa_model::checker::TaskChecker;
use sa_model::graph::Graph;
use sa_model::signal::Signal;

/// The stage of the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Electing a leader (modules RandCount + Elect).
    Computation,
    /// Verifying that exactly one leader exists (module DetectLE).
    Verification,
}

/// The host state of AlgLE (one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeState {
    /// Round number within the current epoch, `0 ..= D − 1`.
    pub round_in_epoch: u16,
    /// Current stage.
    pub stage: Stage,
    /// RandCount: this node's probabilistic-counter flag.
    pub flag: bool,
    /// RandCount: running OR of flags gossiped during the epoch.
    pub heard_flag: bool,
    /// Elect: still a candidate for leadership.
    pub candidate: bool,
    /// Elect: the coin tossed by this candidate at the epoch start.
    pub coin: bool,
    /// Elect: running OR of candidates' coins gossiped during the epoch.
    pub heard_coin: bool,
    /// Whether this node is marked as the leader.
    pub leader: bool,
    /// DetectLE: the first temporary identifier encountered this epoch (`0` = none).
    pub first_id: u8,
}

/// The AlgLE host (to be wrapped in [`WithRestart`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeHost {
    diameter_bound: usize,
    halt_probability: f64,
    detect_id_count: u8,
}

impl LeHost {
    /// Creates the host for diameter bound `D` with default parameters
    /// (`p₀ = 0.2`, `k = 4` temporary identifiers).
    ///
    /// # Panics
    ///
    /// Panics if `D == 0`.
    pub fn new(diameter_bound: usize) -> Self {
        Self::with_parameters(diameter_bound, 0.2, 4)
    }

    /// Creates the host with explicit parameters: the per-epoch probability `p₀` that
    /// a node clears its RandCount flag, and the number `k ≥ 2` of temporary
    /// identifiers used by DetectLE.
    ///
    /// # Panics
    ///
    /// Panics unless `D ≥ 1`, `0 < p₀ < 1` and `k ≥ 2`.
    pub fn with_parameters(
        diameter_bound: usize,
        halt_probability: f64,
        detect_id_count: u8,
    ) -> Self {
        assert!(diameter_bound >= 1, "the diameter bound must be at least 1");
        assert!(
            halt_probability > 0.0 && halt_probability < 1.0,
            "p0 must be in (0, 1)"
        );
        assert!(
            detect_id_count >= 2,
            "DetectLE needs at least 2 identifiers"
        );
        LeHost {
            diameter_bound,
            halt_probability,
            detect_id_count,
        }
    }

    /// The diameter bound `D` (also the epoch length in rounds).
    pub fn diameter_bound(&self) -> usize {
        self.diameter_bound
    }

    fn epoch_len(&self) -> u16 {
        self.diameter_bound as u16
    }

    fn pick_id(&self, rng: &mut dyn RngCore) -> u8 {
        rng.gen_range(1..=self.detect_id_count)
    }

    /// Applies the epoch-start bookkeeping to `state` in place (coin tosses, gossip
    /// seeding, identifier drawing), given the stage the node is entering the epoch
    /// in.
    fn seed_epoch(&self, state: &mut LeState, rng: &mut dyn RngCore) {
        state.round_in_epoch = 0;
        match state.stage {
            Stage::Computation => {
                if state.flag && rng.gen_bool(self.halt_probability) {
                    state.flag = false;
                }
                if state.candidate {
                    state.coin = rng.gen_bool(0.5);
                } else {
                    state.coin = false;
                }
                state.heard_flag = state.flag;
                state.heard_coin = state.candidate && state.coin;
                state.first_id = 0;
            }
            Stage::Verification => {
                state.heard_flag = false;
                state.heard_coin = false;
                state.coin = false;
                state.first_id = if state.leader { self.pick_id(rng) } else { 0 };
            }
        }
    }
}

impl RestartableAlgorithm for LeHost {
    type State = LeState;
    type Output = bool;

    fn initial_state(&self) -> LeState {
        // q₀*: the state every node adopts when Restart exits. The epoch starts
        // immediately; the coin/flag seeds are drawn on the node's first step (the
        // initial state itself is deterministic, as required of a single designated
        // state).
        LeState {
            round_in_epoch: 0,
            stage: Stage::Computation,
            flag: true,
            heard_flag: true,
            candidate: true,
            coin: false,
            heard_coin: false,
            leader: false,
            first_id: 0,
        }
    }

    fn output(&self, state: &LeState) -> Option<bool> {
        Some(state.leader)
    }

    fn step(
        &self,
        s: &LeState,
        signal: &Signal<LeState>,
        rng: &mut dyn RngCore,
    ) -> HostOutcome<LeState> {
        let epoch_len = self.epoch_len();

        // -------- fault detection -----------------------------------------------
        // Epoch round counters must agree exactly (the execution is synchronous and
        // starts concurrently), stages must agree, and counters must be in range.
        if s.round_in_epoch >= epoch_len
            || signal.senses_any(|u| u.round_in_epoch != s.round_in_epoch || u.stage != s.stage)
        {
            return HostOutcome::Restart;
        }
        // DetectLE: conflicting temporary identifiers mean two leaders.
        if s.stage == Stage::Verification
            && s.first_id != 0
            && signal.senses_any(|u| u.first_id != 0 && u.first_id != s.first_id)
        {
            return HostOutcome::Restart;
        }

        let mut next = *s;
        let at_epoch_end = s.round_in_epoch + 1 == epoch_len;

        // -------- gossip during the epoch ---------------------------------------
        let or_heard_flag = signal.senses_any(|u| u.heard_flag);
        let or_heard_coin = signal.senses_any(|u| u.heard_coin);
        let sensed_id = signal
            .iter()
            .map(|u| u.first_id)
            .filter(|id| *id != 0)
            .min();

        if !at_epoch_end {
            next.round_in_epoch = s.round_in_epoch + 1;
            next.heard_flag = or_heard_flag;
            next.heard_coin = or_heard_coin;
            if s.stage == Stage::Verification && s.first_id == 0 {
                if let Some(id) = sensed_id {
                    next.first_id = id;
                }
            }
            return HostOutcome::Continue(next);
        }

        // -------- epoch end ------------------------------------------------------
        match s.stage {
            Stage::Computation => {
                // finish the gossip: one more OR covers distance D ≥ diam(G)
                let i_flag = or_heard_flag;
                let i_coin = or_heard_coin;
                // Elect: withdraw if our coin was 0 while some candidate tossed 1
                if next.candidate && !s.coin && i_coin {
                    next.candidate = false;
                }
                if !i_flag {
                    // RandCount: the computation stage halts; survivors become leaders
                    next.stage = Stage::Verification;
                    next.leader = next.candidate;
                }
            }
            Stage::Verification => {
                // zero leaders are detected deterministically at the epoch end
                let final_id = if s.first_id != 0 {
                    Some(s.first_id)
                } else {
                    sensed_id
                };
                if final_id.is_none() {
                    return HostOutcome::Restart;
                }
            }
        }
        self.seed_epoch(&mut next, rng);
        HostOutcome::Continue(next)
    }

    fn states(&self) -> Vec<LeState> {
        // The product state space: round × stage × flag × heard_flag × candidate ×
        // coin × heard_coin × leader × first_id. O(D) with a constant factor of
        // 2⁷·(k + 1).
        let mut states = Vec::new();
        for round_in_epoch in 0..self.epoch_len() {
            for stage in [Stage::Computation, Stage::Verification] {
                for flag in [false, true] {
                    for heard_flag in [false, true] {
                        for candidate in [false, true] {
                            for coin in [false, true] {
                                for heard_coin in [false, true] {
                                    for leader in [false, true] {
                                        for first_id in 0..=self.detect_id_count {
                                            states.push(LeState {
                                                round_in_epoch,
                                                stage,
                                                flag,
                                                heard_flag,
                                                candidate,
                                                coin,
                                                heard_coin,
                                                leader,
                                                first_id,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        states
    }

    fn name(&self) -> &'static str {
        "AlgLE"
    }
}

/// The full AlgLE algorithm: the LE host wrapped in module Restart.
pub type AlgLe = WithRestart<LeHost>;

/// Convenience constructor for [`AlgLe`].
pub fn alg_le(diameter_bound: usize) -> AlgLe {
    WithRestart::new(LeHost::new(diameter_bound), diameter_bound)
}

/// The LE task checker: exactly one node outputs `true`, and — being a static task —
/// outputs must not change after stabilization.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeChecker;

impl TaskChecker<AlgLe> for LeChecker {
    fn check_snapshot(&self, _graph: &Graph, config: &[RestartState<LeState>]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut leaders = 0usize;
        for (v, state) in config.iter().enumerate() {
            match state {
                RestartState::Restart(i) => {
                    violations.push(format!("node {v} is inside Restart (σ({i}))"));
                }
                RestartState::Host(s) => {
                    if s.leader {
                        leaders += 1;
                    }
                }
            }
        }
        if violations.is_empty() && leaders != 1 {
            violations.push(format!("expected exactly one leader, found {leaders}"));
        }
        violations
    }

    fn check_window(&self, _graph: &Graph, output_changes: &[u64], _rounds: u64) -> Vec<String> {
        output_changes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| {
                format!("leader output of node {v} changed {c} times after stabilization")
            })
            .collect()
    }

    fn task_name(&self) -> &'static str {
        "leader-election"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::checker::measure_static_stabilization;
    use sa_model::executor::{Execution, ExecutionBuilder};
    use sa_model::graph::Graph;
    use sa_model::scheduler::SynchronousScheduler;

    #[test]
    fn initial_state_is_a_computing_candidate() {
        let host = LeHost::new(3);
        let s = host.initial_state();
        assert_eq!(s.stage, Stage::Computation);
        assert!(s.candidate);
        assert!(!s.leader);
        assert_eq!(host.output(&s), Some(false));
    }

    #[test]
    fn epoch_round_mismatch_triggers_restart() {
        let host = LeHost::new(4);
        let mut rng = rand::thread_rng();
        let a = host.initial_state();
        let mut b = a;
        b.round_in_epoch = 2;
        let sig = Signal::from_states(vec![a, b]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn stage_mismatch_triggers_restart() {
        let host = LeHost::new(4);
        let mut rng = rand::thread_rng();
        let a = host.initial_state();
        let mut b = a;
        b.stage = Stage::Verification;
        let sig = Signal::from_states(vec![a, b]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn out_of_range_round_counter_restarts() {
        let host = LeHost::new(3);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.round_in_epoch = 9;
        let sig = Signal::from_states(vec![a]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn conflicting_identifiers_trigger_restart() {
        let host = LeHost::new(3);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.stage = Stage::Verification;
        a.first_id = 1;
        let mut b = a;
        b.first_id = 2;
        let sig = Signal::from_states(vec![a, b]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn verification_with_no_identifier_restarts_at_epoch_end() {
        let host = LeHost::new(2);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.stage = Stage::Verification;
        a.round_in_epoch = 1; // last round of the epoch (D = 2)
        a.first_id = 0;
        a.leader = false;
        let sig = Signal::from_states(vec![a]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn identifiers_spread_during_verification() {
        let host = LeHost::new(4);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.stage = Stage::Verification;
        a.round_in_epoch = 1;
        a.first_id = 0;
        let mut b = a;
        b.first_id = 3;
        let sig = Signal::from_states(vec![a, b]);
        match host.step(&a, &sig, &mut rng) {
            HostOutcome::Continue(next) => {
                assert_eq!(next.first_id, 3);
                assert_eq!(next.round_in_epoch, 2);
            }
            HostOutcome::Restart => panic!("unexpected restart"),
        }
    }

    #[test]
    fn elect_withdraws_on_losing_coin() {
        let host = LeHost::new(2);
        let mut rng = rand::thread_rng();
        // at the epoch end, a candidate with coin 0 that heard a coin 1 withdraws
        let mut a = host.initial_state();
        a.round_in_epoch = 1; // D = 2, so this is the last round
        a.coin = false;
        a.heard_coin = false;
        let mut b = a;
        b.heard_coin = true;
        let sig = Signal::from_states(vec![a, b]);
        match host.step(&a, &sig, &mut rng) {
            HostOutcome::Continue(next) => {
                assert!(!next.candidate);
                assert_eq!(next.round_in_epoch, 0, "a new epoch begins");
            }
            HostOutcome::Restart => panic!("unexpected restart"),
        }
    }

    #[test]
    fn computation_halts_when_no_flag_is_heard() {
        let host = LeHost::new(2);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.round_in_epoch = 1;
        a.flag = false;
        a.heard_flag = false;
        a.coin = true;
        a.heard_coin = true;
        let sig = Signal::from_states(vec![a]);
        match host.step(&a, &sig, &mut rng) {
            HostOutcome::Continue(next) => {
                assert_eq!(next.stage, Stage::Verification);
                assert!(next.leader, "a surviving candidate becomes the leader");
                assert_ne!(next.first_id, 0, "the leader draws an identifier");
            }
            HostOutcome::Restart => panic!("unexpected restart"),
        }
    }

    #[test]
    fn elects_exactly_one_leader_from_fresh_start() {
        for (gi, graph) in [
            Graph::complete(8),
            Graph::star(9),
            Graph::cycle(6),
            Graph::grid(3, 3),
            Graph::path(5),
        ]
        .iter()
        .enumerate()
        {
            let d = graph.diameter();
            let alg = alg_le(d.max(1));
            let init = vec![RestartState::Host(alg.host().initial_state()); graph.node_count()];
            let mut exec = Execution::new(&alg, graph, init, 99 + gi as u64);
            let mut sched = SynchronousScheduler;
            let report = measure_static_stabilization(&mut exec, &mut sched, &LeChecker, 800, 100);
            assert!(
                report.stabilization_round.is_some(),
                "graph {gi}: {report:?}"
            );
        }
    }

    #[test]
    fn self_stabilizes_from_adversarial_configurations() {
        use sa_model::algorithm::StateSpace;
        let graph = Graph::cycle(8);
        let d = graph.diameter();
        let alg = alg_le(d);
        let palette = alg.states();
        for seed in 0..5u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&palette);
            let mut sched = SynchronousScheduler;
            let report = measure_static_stabilization(&mut exec, &mut sched, &LeChecker, 2500, 150);
            assert!(
                report.stabilization_round.is_some(),
                "seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn state_space_scales_linearly_with_d() {
        use sa_model::algorithm::StateSpace;
        let s4 = alg_le(4).state_count();
        let s8 = alg_le(8).state_count();
        let s16 = alg_le(16).state_count();
        // doubling D roughly doubles the state count (affine in D)
        assert!(s8 > s4 && s16 > s8);
        let growth1 = s8 - s4;
        let growth2 = s16 - s8;
        assert_eq!(growth2, 2 * growth1, "state count must be affine in D");
    }
}
