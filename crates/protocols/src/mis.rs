//! AlgMIS — the synchronous self-stabilizing maximal independent set algorithm
//! (Section 3.1, Theorem 1.4).
//!
//! AlgMIS composes three modules on top of module [`Restart`](crate::restart):
//!
//! * **RandPhase** divides the execution into phases. Each phase has a random prefix
//!   (every node keeps a `flag` and clears it with probability `p₀` per round; the
//!   prefix lasts until the last flag clears) followed by a deterministic suffix of
//!   `D + 2` rounds driven by a `step` counter that rises in a wave (Lemma 3.5 /
//!   Corollary 3.6 guarantee that all nodes finish the phase concurrently).
//! * **Compete** runs among the still-undecided nodes: in every two-round *trial*
//!   a candidate tosses a fair coin and drops out if its coin was 0 while some
//!   undecided candidate neighbor tossed 1. A node that is still a candidate when
//!   `step` reaches `D + 1` joins the MIS (`IN`); its undecided neighbors join `OUT`
//!   one round later.
//! * **DetectMIS** runs among the decided nodes and detects local faults — two
//!   adjacent `IN` nodes (caught with constant probability per round via random
//!   temporary identifiers) or an `OUT` node with no `IN` neighbor (caught
//!   deterministically) — and invokes Restart.
//!
//! The composite algorithm [`AlgMis`] = `WithRestart<MisHost>` is a synchronous
//! self-stabilizing MIS algorithm with `O(D)` states that stabilizes in
//! `O((D + log n)·log n)` rounds in expectation and whp.

use crate::restart::{HostOutcome, RestartState, RestartableAlgorithm, WithRestart};
use rand::Rng;
use rand::RngCore;
use sa_model::checker::TaskChecker;
use sa_model::graph::Graph;
use sa_model::signal::Signal;

/// The decision status of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Decision {
    /// Not yet decided; still competing.
    Undecided,
    /// Joined the independent set.
    In,
    /// Excluded from the independent set (has an `In` neighbor).
    Out,
}

/// The host state of AlgMIS (one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MisState {
    /// RandPhase: position in the deterministic suffix, `0 ..= D + 2`.
    pub step: u16,
    /// RandPhase: still in the random prefix of the current phase.
    pub flag: bool,
    /// Decision status (persists across phases).
    pub decision: Decision,
    /// Compete: still a candidate to join `IN` in the current phase.
    pub candidate: bool,
    /// Compete: the coin tossed in the most recent toss round.
    pub coin: bool,
    /// Compete: parity bit — `true` means the previous round was a toss round and the
    /// current round evaluates the trial.
    pub evaluate: bool,
    /// DetectMIS: temporary identifier (`0` for non-`IN` nodes, `1 ..= k` for `IN`).
    pub detect_id: u8,
}

/// The AlgMIS host (to be wrapped in [`WithRestart`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisHost {
    diameter_bound: usize,
    prefix_stop_probability: f64,
    detect_id_count: u8,
}

impl MisHost {
    /// Creates the host for diameter bound `D` with default parameters
    /// (`p₀ = 0.2`, `k = 4` temporary identifiers).
    pub fn new(diameter_bound: usize) -> Self {
        Self::with_parameters(diameter_bound, 0.2, 4)
    }

    /// Creates the host with explicit parameters: the per-round probability `p₀` of
    /// ending a node's random prefix, and the number `k ≥ 2` of temporary identifiers
    /// used by DetectMIS.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p₀ < 1` and `k ≥ 2`.
    pub fn with_parameters(
        diameter_bound: usize,
        prefix_stop_probability: f64,
        detect_id_count: u8,
    ) -> Self {
        assert!(
            prefix_stop_probability > 0.0 && prefix_stop_probability < 1.0,
            "p0 must be in (0, 1)"
        );
        assert!(
            detect_id_count >= 2,
            "DetectMIS needs at least 2 identifiers"
        );
        assert!(diameter_bound >= 1, "the diameter bound must be at least 1");
        MisHost {
            diameter_bound,
            prefix_stop_probability,
            detect_id_count,
        }
    }

    /// The diameter bound `D`.
    pub fn diameter_bound(&self) -> usize {
        self.diameter_bound
    }

    /// The last step value of a phase, `D + 2`.
    fn last_step(&self) -> u16 {
        self.diameter_bound as u16 + 2
    }

    fn fresh_phase(mut state: MisState) -> MisState {
        state.step = 0;
        state.flag = true;
        state.candidate = true;
        state.coin = false;
        state.evaluate = false;
        state
    }

    fn pick_id(&self, rng: &mut dyn RngCore) -> u8 {
        rng.gen_range(1..=self.detect_id_count)
    }
}

impl RestartableAlgorithm for MisHost {
    type State = MisState;
    type Output = bool;

    fn initial_state(&self) -> MisState {
        MisState {
            step: 0,
            flag: true,
            decision: Decision::Undecided,
            candidate: true,
            coin: false,
            evaluate: false,
            detect_id: 0,
        }
    }

    fn output(&self, state: &MisState) -> Option<bool> {
        match state.decision {
            Decision::Undecided => None,
            Decision::In => Some(true),
            Decision::Out => Some(false),
        }
    }

    fn step(
        &self,
        s: &MisState,
        signal: &Signal<MisState>,
        rng: &mut dyn RngCore,
    ) -> HostOutcome<MisState> {
        let last = self.last_step();

        // -------- fault detection ---------------------------------------------
        // RandPhase: neighboring step counters may differ by at most one.
        if s.step > last || signal.senses_any(|u| u.step.abs_diff(s.step) > 1 || u.step > last) {
            return HostOutcome::Restart;
        }
        // DetectMIS (decided nodes only).
        match s.decision {
            Decision::Out => {
                // an OUT node must sense a temporary identifier (i.e. an IN node)
                if !signal.senses_any(|u| u.detect_id != 0) {
                    return HostOutcome::Restart;
                }
            }
            Decision::In => {
                // an IN node must not sense a *different* temporary identifier
                if signal.senses_any(|u| u.detect_id != 0 && u.detect_id != s.detect_id) {
                    return HostOutcome::Restart;
                }
            }
            Decision::Undecided => {}
        }

        // -------- RandPhase ----------------------------------------------------
        let mut next = *s;
        let mut started_new_phase = false;
        let step_min = signal
            .min_by_key(|u| u.step)
            .expect("signal contains the node's own state");
        if s.flag {
            // random prefix: step stays 0; clear the flag with probability p0 and, in
            // the round the flag clears, perform the first deterministic update.
            if rng.gen_bool(self.prefix_stop_probability) {
                next.flag = false;
                next.step = step_min + 1;
            } else {
                next.step = 0;
            }
        } else if step_min < last {
            next.step = step_min + 1;
        } else {
            // everyone around (including this node) reached D + 2: the phase ends and
            // a new one begins.
            next = Self::fresh_phase(next);
            started_new_phase = true;
        }

        // -------- Compete (undecided nodes) ------------------------------------
        // The trial parity toggles every round of a phase and is reset to "toss" when
        // a new phase begins (all nodes start phases concurrently, so the parity is
        // globally consistent).
        if !started_new_phase {
            next.evaluate = !s.evaluate;
        }
        if !started_new_phase
            && s.decision == Decision::Undecided
            && s.candidate
            && s.step <= self.diameter_bound as u16
        {
            if !s.evaluate {
                // toss round
                next.coin = rng.gen_bool(0.5);
            } else {
                // evaluate round: drop out if our coin was 0 and some undecided
                // candidate in the inclusive neighborhood tossed 1
                let ic = signal
                    .senses_any(|u| u.decision == Decision::Undecided && u.candidate && u.coin);
                if !s.coin && ic {
                    next.candidate = false;
                }
            }
        }

        // -------- joining IN / OUT ---------------------------------------------
        if s.decision == Decision::Undecided && !started_new_phase {
            if next.step == self.diameter_bound as u16 + 1 && next.candidate {
                next.decision = Decision::In;
            } else if next.step == last && signal.senses_any(|u| u.decision == Decision::In) {
                next.decision = Decision::Out;
            }
        }

        // -------- DetectMIS identifier refresh ----------------------------------
        next.detect_id = if next.decision == Decision::In {
            self.pick_id(rng)
        } else {
            0
        };

        HostOutcome::Continue(next)
    }

    fn states(&self) -> Vec<MisState> {
        // Enumerate the full product state space (it is O(D) with a constant factor of
        // 3·2⁴·(k+1) ≈ 240): step × flag × decision × candidate × coin × evaluate ×
        // detect_id.
        let mut states = Vec::new();
        for step in 0..=self.last_step() {
            for flag in [false, true] {
                for decision in [Decision::Undecided, Decision::In, Decision::Out] {
                    for candidate in [false, true] {
                        for coin in [false, true] {
                            for evaluate in [false, true] {
                                for detect_id in 0..=self.detect_id_count {
                                    states.push(MisState {
                                        step,
                                        flag,
                                        decision,
                                        candidate,
                                        coin,
                                        evaluate,
                                        detect_id,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        states
    }

    fn name(&self) -> &'static str {
        "AlgMIS"
    }
}

/// The full AlgMIS algorithm: the MIS host wrapped in module Restart.
pub type AlgMis = WithRestart<MisHost>;

/// Convenience constructor for [`AlgMis`].
pub fn alg_mis(diameter_bound: usize) -> AlgMis {
    WithRestart::new(MisHost::new(diameter_bound), diameter_bound)
}

/// The MIS task checker: the set of nodes outputting `true` must be independent and
/// maximal (every `false`/undecided node has a `true` neighbor), and — being a static
/// task — outputs must not change after stabilization.
#[derive(Debug, Clone, Copy, Default)]
pub struct MisChecker;

impl MisChecker {
    /// Checks an explicit membership vector (`true` = in the set) for independence
    /// and maximality on `graph`. Shared by the checker and by tests.
    pub fn check_membership(graph: &Graph, in_set: &[bool]) -> Vec<String> {
        let mut violations = Vec::new();
        for &(u, v) in graph.edges() {
            if in_set[u] && in_set[v] {
                violations.push(format!(
                    "independence violated: adjacent nodes {u} and {v} are both IN"
                ));
            }
        }
        for v in graph.nodes() {
            if !in_set[v] && !graph.neighbors(v).iter().any(|&u| in_set[u]) {
                violations.push(format!(
                    "maximality violated: node {v} is OUT with no IN neighbor"
                ));
            }
        }
        violations
    }
}

impl TaskChecker<AlgMis> for MisChecker {
    fn check_snapshot(&self, graph: &Graph, config: &[RestartState<MisState>]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut in_set = vec![false; config.len()];
        for (v, state) in config.iter().enumerate() {
            match state {
                RestartState::Restart(i) => {
                    violations.push(format!("node {v} is inside Restart (σ({i}))"));
                }
                RestartState::Host(s) => match s.decision {
                    Decision::Undecided => violations.push(format!("node {v} is still undecided")),
                    Decision::In => in_set[v] = true,
                    Decision::Out => {}
                },
            }
        }
        if violations.is_empty() {
            violations.extend(Self::check_membership(graph, &in_set));
        }
        violations
    }

    fn check_window(&self, _graph: &Graph, output_changes: &[u64], _rounds: u64) -> Vec<String> {
        output_changes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| {
                format!("static output of node {v} changed {c} times after stabilization")
            })
            .collect()
    }

    fn task_name(&self) -> &'static str {
        "maximal-independent-set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::checker::measure_static_stabilization;
    use sa_model::executor::{Execution, ExecutionBuilder};
    use sa_model::graph::Graph;
    use sa_model::scheduler::SynchronousScheduler;

    fn all_decided_and_valid(graph: &Graph, config: &[RestartState<MisState>]) -> bool {
        MisChecker.check_snapshot(graph, config).is_empty()
    }

    #[test]
    fn initial_state_is_fresh() {
        let host = MisHost::new(3);
        let s = host.initial_state();
        assert_eq!(s.step, 0);
        assert!(s.flag);
        assert_eq!(s.decision, Decision::Undecided);
        assert!(s.candidate);
        assert_eq!(s.detect_id, 0);
        assert_eq!(host.output(&s), None);
    }

    #[test]
    fn output_maps_decisions() {
        let host = MisHost::new(2);
        let mut s = host.initial_state();
        s.decision = Decision::In;
        assert_eq!(host.output(&s), Some(true));
        s.decision = Decision::Out;
        assert_eq!(host.output(&s), Some(false));
    }

    #[test]
    fn step_mismatch_triggers_restart() {
        let host = MisHost::new(3);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.flag = false;
        a.step = 0;
        let mut b = a;
        b.step = 4;
        let sig = Signal::from_states(vec![a, b]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn out_node_without_in_neighbor_restarts() {
        let host = MisHost::new(2);
        let mut rng = rand::thread_rng();
        let mut out = host.initial_state();
        out.decision = Decision::Out;
        let undecided = host.initial_state();
        let sig = Signal::from_states(vec![out, undecided]);
        assert_eq!(host.step(&out, &sig, &mut rng), HostOutcome::Restart);
    }

    #[test]
    fn in_node_sensing_other_identifier_restarts() {
        let host = MisHost::new(2);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.decision = Decision::In;
        a.detect_id = 1;
        let mut b = a;
        b.detect_id = 2;
        let sig = Signal::from_states(vec![a, b]);
        assert_eq!(host.step(&a, &sig, &mut rng), HostOutcome::Restart);
        // the same identifier is not detected (constant-probability detection)
        let sig = Signal::from_states(vec![a, a]);
        assert!(matches!(
            host.step(&a, &sig, &mut rng),
            HostOutcome::Continue(_)
        ));
    }

    #[test]
    fn in_nodes_keep_nonzero_identifiers() {
        let host = MisHost::new(2);
        let mut rng = rand::thread_rng();
        let mut a = host.initial_state();
        a.decision = Decision::In;
        a.detect_id = 3;
        a.flag = false;
        a.step = 1;
        let sig = Signal::from_states(vec![a]);
        match host.step(&a, &sig, &mut rng) {
            HostOutcome::Continue(next) => {
                assert_ne!(next.detect_id, 0);
                assert_eq!(next.decision, Decision::In);
            }
            HostOutcome::Restart => panic!("unexpected restart"),
        }
    }

    #[test]
    fn deterministic_suffix_wave_and_phase_turnover() {
        // with the flag already cleared everywhere, steps rise in lockstep and the
        // phase wraps around at D + 2
        let host = MisHost::new(1); // last step = 3
        let mut rng = rand::thread_rng();
        let mut s = host.initial_state();
        s.flag = false;
        s.step = 3;
        s.decision = Decision::In;
        s.detect_id = 1;
        let sig = Signal::from_states(vec![s]);
        match host.step(&s, &sig, &mut rng) {
            HostOutcome::Continue(next) => {
                assert_eq!(next.step, 0);
                assert!(next.flag, "a fresh phase restores the random prefix");
                assert!(next.candidate);
                assert_eq!(
                    next.decision,
                    Decision::In,
                    "decisions persist across phases"
                );
            }
            HostOutcome::Restart => panic!("unexpected restart"),
        }
    }

    #[test]
    fn checker_validates_membership() {
        let g = Graph::path(4);
        assert!(MisChecker::check_membership(&g, &[true, false, true, false]).is_empty());
        // adjacent INs
        assert!(!MisChecker::check_membership(&g, &[true, true, false, true]).is_empty());
        // non-maximal: node 3 is OUT without any IN neighbor
        assert!(!MisChecker::check_membership(&g, &[true, false, false, false]).is_empty());
    }

    #[test]
    fn solves_mis_on_small_graphs_from_fresh_start() {
        for (gi, graph) in [
            Graph::complete(6),
            Graph::path(7),
            Graph::cycle(8),
            Graph::star(7),
            Graph::grid(3, 3),
        ]
        .iter()
        .enumerate()
        {
            let d = graph.diameter();
            let alg = alg_mis(d.max(1));
            let init = vec![RestartState::Host(alg.host().initial_state()); graph.node_count()];
            let mut exec = Execution::new(&alg, graph, init, 1234 + gi as u64);
            let mut sched = SynchronousScheduler;
            let report = measure_static_stabilization(&mut exec, &mut sched, &MisChecker, 600, 50);
            assert!(
                report.stabilization_round.is_some(),
                "graph {gi}: {report:?}"
            );
            assert!(all_decided_and_valid(graph, exec.configuration()));
        }
    }

    #[test]
    fn self_stabilizes_from_adversarial_configurations() {
        // Random garbage states (including Restart fragments and bogus decided nodes)
        // must still converge to a correct MIS under the synchronous schedule.
        use sa_model::algorithm::StateSpace;
        let graph = Graph::grid(3, 4);
        let d = graph.diameter();
        let alg = alg_mis(d);
        let palette = alg.states();
        for seed in 0..5u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&palette);
            let mut sched = SynchronousScheduler;
            let report =
                measure_static_stabilization(&mut exec, &mut sched, &MisChecker, 1500, 100);
            assert!(
                report.stabilization_round.is_some(),
                "seed {seed}: {report:?}"
            );
            assert!(
                all_decided_and_valid(&graph, exec.configuration()),
                "seed {seed}"
            );
        }
    }
}
