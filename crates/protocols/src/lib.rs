//! # sa-protocols — synchronous self-stabilizing protocols on top of module Restart
//!
//! This crate implements Section 3 of Emek & Keren (PODC 2021):
//!
//! * [`restart`] — module `Restart` (Theorem 3.1): a synchronous `O(D)`-state reset
//!   primitive with a concurrent, coordinated exit, implemented as a generic wrapper
//!   [`WithRestart`] around any [`RestartableAlgorithm`] host;
//! * [`mis`] — AlgMIS (Theorem 1.4): synchronous self-stabilizing maximal independent
//!   set with `O(D)` states, stabilizing in `O((D + log n)·log n)` rounds whp;
//! * [`le`] — AlgLE (Theorem 1.3): synchronous self-stabilizing leader election with
//!   `O(D)` states, stabilizing in `O(D·log n)` rounds whp.
//!
//! Both AlgMIS and AlgLE are *synchronous* algorithms: their guarantees hold under
//! [`SynchronousScheduler`](sa_model::scheduler::SynchronousScheduler). The companion
//! crate `sa-synchronizer` lifts them to arbitrary asynchronous schedules via the
//! AlgAU-based synchronizer of Corollary 1.2.
//!
//! ## Example
//!
//! ```
//! use sa_model::prelude::*;
//! use sa_model::checker::measure_static_stabilization;
//! use sa_protocols::mis::{alg_mis, MisChecker};
//! use sa_protocols::restart::{RestartState, RestartableAlgorithm};
//!
//! let graph = Graph::grid(3, 3);
//! let alg = alg_mis(graph.diameter());
//! let init = vec![RestartState::Host(alg.host().initial_state()); graph.node_count()];
//! let mut exec = Execution::new(&alg, &graph, init, 7);
//! let mut sched = SynchronousScheduler;
//! let report = measure_static_stabilization(&mut exec, &mut sched, &MisChecker, 500, 50);
//! assert!(report.stabilization_round.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod le;
pub mod mis;
pub mod restart;

pub use le::{alg_le, AlgLe, LeChecker, LeHost, LeState, Stage};
pub use mis::{alg_mis, AlgMis, Decision, MisChecker, MisHost, MisState};
pub use restart::{
    measure_restart_exit, HostOutcome, RestartExitReport, RestartState, RestartableAlgorithm,
    TrivialHost, WithRestart,
};
