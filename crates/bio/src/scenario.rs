//! Biological network scenarios.
//!
//! The paper's title promises "applications to fault tolerant biological networks";
//! its introduction motivates the stone age model with cellular networks (weak,
//! anonymous, bounded-memory agents, broadcast-like sensing, transient environmental
//! faults) and §5 points to concrete biological analogues: quorum sensing in
//! bacterial populations (a broadcast/complete-graph setting) and the fly's sensory
//! organ precursor selection, which is exactly MIS under lateral inhibition
//! (Afek et al., Scott et al.).
//!
//! This module provides three concrete scenario families used by the examples, the
//! recovery experiments (E10) and the integration tests:
//!
//! * [`ColonyScenario`] — a bacterial colony as a damaged clique (dense broadcast
//!   network with some links severed by the environment); the colony must keep
//!   exactly one "decision maker" cell — leader election.
//! * [`TissueScenario`] — an epithelial sheet as a grid/torus; the tissue must keep a
//!   well-spaced set of differentiated cells — maximal independent set via lateral
//!   inhibition.
//! * [`PulseScenario`] — a tissue-wide pulse (e.g. a segmentation clock): every cell
//!   keeps a phase that must stay within one tick of its neighbors and keep
//!   advancing — asynchronous unison.

use sa_model::graph::Graph;
use sa_model::topology::Topology;

/// How severely the environment perturbs the network (used to pick fault rates in the
/// experiments and examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Harshness {
    /// Rare, isolated faults.
    Mild,
    /// Recurring fault bursts.
    Moderate,
    /// Frequent, widespread corruption.
    Severe,
}

impl Harshness {
    /// A per-node, per-round state-corruption probability matching the harshness
    /// level.
    pub fn per_node_rate(&self) -> f64 {
        match self {
            Harshness::Mild => 0.0005,
            Harshness::Moderate => 0.005,
            Harshness::Severe => 0.02,
        }
    }

    /// The fraction of nodes hit by a single fault burst.
    pub fn burst_fraction(&self) -> f64 {
        match self {
            Harshness::Mild => 0.1,
            Harshness::Moderate => 0.3,
            Harshness::Severe => 0.6,
        }
    }
}

/// A bacterial colony: `cells` individuals communicating by diffusing signalling
/// molecules — effectively a complete broadcast graph from which the environment has
/// severed a fraction `severed_links` of the links (keeping the diameter at most
/// `max_diameter`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColonyScenario {
    /// Number of cells in the colony.
    pub cells: usize,
    /// Fraction of pairwise links severed by environmental obstacles.
    pub severed_links: f64,
    /// Upper bound on the resulting communication diameter.
    pub max_diameter: usize,
}

impl ColonyScenario {
    /// A colony of the given size with moderate link damage (30% severed, diameter
    /// at most 2 — the paper's "natural extension of complete graphs").
    pub fn new(cells: usize) -> Self {
        ColonyScenario {
            cells,
            severed_links: 0.3,
            max_diameter: 2,
        }
    }

    /// Builds the colony's communication graph.
    ///
    /// # Panics
    ///
    /// Panics if the colony has fewer than 2 cells.
    pub fn build(&self, seed: u64) -> Graph {
        assert!(self.cells >= 2, "a colony needs at least 2 cells");
        if self.severed_links == 0.0 {
            return Topology::Complete { n: self.cells }.build_deterministic();
        }
        Topology::DamagedClique {
            n: self.cells,
            drop: self.severed_links,
            max_diameter: self.max_diameter,
        }
        .build(seed)
    }

    /// The diameter bound to configure algorithms with.
    pub fn diameter_bound(&self) -> usize {
        if self.severed_links == 0.0 {
            1
        } else {
            self.max_diameter
        }
    }
}

/// An epithelial tissue sheet: a `rows × cols` lattice of cells, optionally wrapped
/// into a torus (no boundary effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TissueScenario {
    /// Number of cell rows.
    pub rows: usize,
    /// Number of cell columns.
    pub cols: usize,
    /// Whether the sheet wraps around (torus) or has boundaries (grid).
    pub wrap: bool,
}

impl TissueScenario {
    /// A bounded sheet of the given dimensions.
    pub fn sheet(rows: usize, cols: usize) -> Self {
        TissueScenario {
            rows,
            cols,
            wrap: false,
        }
    }

    /// A wrapped (toroidal) sheet of the given dimensions.
    pub fn torus(rows: usize, cols: usize) -> Self {
        TissueScenario {
            rows,
            cols,
            wrap: true,
        }
    }

    /// Builds the tissue's adjacency graph.
    pub fn build(&self) -> Graph {
        if self.wrap {
            Topology::Torus {
                rows: self.rows,
                cols: self.cols,
            }
            .build_deterministic()
        } else {
            Topology::Grid {
                rows: self.rows,
                cols: self.cols,
            }
            .build_deterministic()
        }
    }

    /// The exact diameter of the tissue graph (used as the diameter bound).
    pub fn diameter_bound(&self) -> usize {
        if self.wrap {
            self.rows / 2 + self.cols / 2
        } else {
            self.rows + self.cols - 2
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// A field of cells that must maintain a coherent, advancing pulse: cell clusters
/// arranged in a ring (the caveman topology), as in a segmented tissue where each
/// segment is densely coupled and consecutive segments touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseScenario {
    /// Number of segments (cell clusters).
    pub segments: usize,
    /// Number of cells per segment.
    pub cells_per_segment: usize,
}

impl PulseScenario {
    /// Creates a pulse field with the given segmentation.
    pub fn new(segments: usize, cells_per_segment: usize) -> Self {
        PulseScenario {
            segments,
            cells_per_segment,
        }
    }

    /// Builds the coupling graph.
    pub fn build(&self) -> Graph {
        Topology::Caveman {
            clusters: self.segments,
            clique: self.cells_per_segment,
        }
        .build_deterministic()
    }

    /// The diameter bound to configure AlgAU with (computed exactly from the built
    /// graph, since the caveman diameter has no closed form worth hard-coding).
    pub fn diameter_bound(&self) -> usize {
        self.build().diameter()
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.segments * self.cells_per_segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harshness_rates_are_ordered() {
        assert!(Harshness::Mild.per_node_rate() < Harshness::Moderate.per_node_rate());
        assert!(Harshness::Moderate.per_node_rate() < Harshness::Severe.per_node_rate());
        assert!(Harshness::Mild.burst_fraction() < Harshness::Severe.burst_fraction());
    }

    #[test]
    fn colony_respects_diameter_bound() {
        let colony = ColonyScenario::new(20);
        let g = colony.build(7);
        assert_eq!(g.node_count(), 20);
        assert!(g.is_connected());
        assert!(g.diameter() <= colony.diameter_bound());
    }

    #[test]
    fn undamaged_colony_is_complete() {
        let colony = ColonyScenario {
            cells: 8,
            severed_links: 0.0,
            max_diameter: 1,
        };
        let g = colony.build(0);
        assert_eq!(g.edge_count(), 8 * 7 / 2);
        assert_eq!(colony.diameter_bound(), 1);
    }

    #[test]
    fn tissue_sheet_and_torus_shapes() {
        let sheet = TissueScenario::sheet(4, 5);
        assert_eq!(sheet.cells(), 20);
        assert_eq!(sheet.build().diameter(), sheet.diameter_bound());
        let torus = TissueScenario::torus(4, 6);
        assert_eq!(torus.build().diameter(), torus.diameter_bound());
    }

    #[test]
    fn pulse_field_is_connected() {
        let pulse = PulseScenario::new(5, 4);
        let g = pulse.build();
        assert_eq!(g.node_count(), pulse.cells());
        assert!(g.is_connected());
        assert_eq!(g.diameter(), pulse.diameter_bound());
    }
}
