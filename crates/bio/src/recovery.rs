//! Fault-recovery measurement for biological scenarios.
//!
//! Self-stabilization is the formal counterpart of what a biological tissue does after
//! an environmental insult: no matter which cells were scrambled, the population
//! returns to a functional global state on its own. The helpers here quantify that:
//!
//! * [`run_burst_recovery_trials`] — repeatedly scramble a fraction of the cells and
//!   measure how many rounds the system needs to return to a legitimate
//!   configuration;
//! * [`measure_availability`] — subject the system to continuous background noise and
//!   measure the fraction of time it spends in a legitimate configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sa_model::algorithm::{Algorithm, LegitimacyOracle};
use sa_model::executor::Execution;
use sa_model::graph::Graph;
use sa_model::scheduler::Scheduler;

/// Statistics collected by [`run_burst_recovery_trials`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Rounds needed to recover after each successfully recovered burst.
    pub recovery_rounds: Vec<u64>,
    /// Number of bursts from which the system failed to recover within the budget.
    pub unrecovered: usize,
    /// Rounds needed for the initial (pre-fault) stabilization, if it happened.
    pub initial_stabilization: Option<u64>,
}

impl RecoveryStats {
    /// Mean recovery time over the recovered bursts (`None` if none recovered).
    pub fn mean_recovery(&self) -> Option<f64> {
        if self.recovery_rounds.is_empty() {
            return None;
        }
        Some(self.recovery_rounds.iter().sum::<u64>() as f64 / self.recovery_rounds.len() as f64)
    }

    /// Worst-case recovery time over the recovered bursts.
    pub fn max_recovery(&self) -> Option<u64> {
        self.recovery_rounds.iter().max().copied()
    }

    /// Whether every burst was recovered from.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered == 0 && self.initial_stabilization.is_some()
    }
}

/// Runs `trials` burst-recovery trials of `algorithm` on `graph`.
///
/// The execution starts from `benign_start`, stabilizes (at most
/// `max_recovery_rounds` rounds), and then repeatedly: `burst_size` random cells are
/// overwritten with random states from `fault_palette`, and the number of rounds
/// until the legitimacy predicate holds again is recorded.
#[allow(clippy::too_many_arguments)]
pub fn run_burst_recovery_trials<A, S, O>(
    algorithm: &A,
    graph: &Graph,
    benign_start: Vec<A::State>,
    scheduler: &mut S,
    oracle: &O,
    fault_palette: &[A::State],
    burst_size: usize,
    trials: usize,
    max_recovery_rounds: u64,
    seed: u64,
) -> RecoveryStats
where
    A: Algorithm,
    S: Scheduler,
    O: LegitimacyOracle<A>,
{
    assert!(!fault_palette.is_empty(), "fault palette must not be empty");
    assert!(burst_size >= 1, "a burst must corrupt at least one node");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb10_b10);
    let mut exec = Execution::new(algorithm, graph, benign_start, seed);
    let initial = exec
        .run_until_legitimate(scheduler, oracle, max_recovery_rounds)
        .rounds();
    let mut stats = RecoveryStats {
        recovery_rounds: Vec::new(),
        unrecovered: 0,
        initial_stabilization: initial,
    };
    if initial.is_none() {
        stats.unrecovered = trials;
        return stats;
    }
    let n = graph.node_count();
    for _ in 0..trials {
        // scramble `burst_size` distinct cells
        let mut victims: Vec<usize> = (0..n).collect();
        for i in 0..burst_size.min(n) {
            let j = rng.gen_range(i..n);
            victims.swap(i, j);
        }
        for &v in victims.iter().take(burst_size.min(n)) {
            let state = fault_palette[rng.gen_range(0..fault_palette.len())].clone();
            exec.corrupt(v, state);
        }
        let before = exec.rounds();
        match exec
            .run_until_legitimate(scheduler, oracle, max_recovery_rounds)
            .rounds()
        {
            Some(after) => stats.recovery_rounds.push(after - before),
            None => stats.unrecovered += 1,
        }
    }
    stats
}

/// Result of [`measure_availability`].
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Fraction of observed round boundaries at which the configuration was
    /// legitimate.
    pub availability: f64,
    /// Total number of node-state corruptions injected.
    pub faults_injected: u64,
    /// Number of rounds observed.
    pub rounds: u64,
}

/// Runs `rounds` rounds under continuous background noise: at every round boundary
/// each cell is independently scrambled with probability `per_node_rate`. Returns the
/// fraction of round boundaries at which the configuration was legitimate.
#[allow(clippy::too_many_arguments)]
pub fn measure_availability<A, S, O>(
    algorithm: &A,
    graph: &Graph,
    benign_start: Vec<A::State>,
    scheduler: &mut S,
    oracle: &O,
    fault_palette: &[A::State],
    per_node_rate: f64,
    rounds: u64,
    seed: u64,
) -> AvailabilityReport
where
    A: Algorithm,
    S: Scheduler,
    O: LegitimacyOracle<A>,
{
    assert!(!fault_palette.is_empty(), "fault palette must not be empty");
    assert!(
        (0.0..=1.0).contains(&per_node_rate),
        "rate must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut exec = Execution::new(algorithm, graph, benign_start, seed);
    let mut legitimate_rounds = 0u64;
    let mut faults = 0u64;
    let target = exec.rounds() + rounds;
    while exec.rounds() < target {
        let step = exec.step_with(scheduler);
        if !step.round_completed {
            continue;
        }
        if oracle.is_legitimate(graph, exec.configuration()) {
            legitimate_rounds += 1;
        }
        for v in 0..graph.node_count() {
            if rng.gen_bool(per_node_rate) {
                let state = fault_palette[rng.gen_range(0..fault_palette.len())].clone();
                exec.corrupt(v, state);
                faults += 1;
            }
        }
    }
    AvailabilityReport {
        availability: legitimate_rounds as f64 / rounds as f64,
        faults_injected: faults,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::algorithm::StateSpace;
    use sa_model::scheduler::{SynchronousScheduler, UniformRandomScheduler};
    use unison_core::{AlgAu, GoodGraphOracle, Turn};

    fn unison_setup(graph: &Graph) -> (AlgAu, Vec<Turn>, Vec<Turn>) {
        let alg = AlgAu::new(graph.diameter());
        let start = vec![Turn::Able(1); graph.node_count()];
        let palette = alg.states();
        (alg, start, palette)
    }

    #[test]
    fn unison_recovers_from_bursts() {
        let graph = Graph::grid(3, 3);
        let (alg, start, palette) = unison_setup(&graph);
        let mut sched = UniformRandomScheduler::new(0.5);
        let stats = run_burst_recovery_trials(
            &alg,
            &graph,
            start,
            &mut sched,
            &GoodGraphOracle::new(alg),
            &palette,
            4,
            5,
            50_000,
            1,
        );
        assert!(stats.fully_recovered(), "{stats:?}");
        assert_eq!(stats.recovery_rounds.len(), 5);
        assert!(stats.mean_recovery().unwrap() >= 0.0);
        assert!(stats.max_recovery().unwrap() < 50_000);
    }

    #[test]
    fn availability_is_high_under_mild_noise_and_one_without_noise() {
        let graph = Graph::cycle(6);
        let (alg, start, palette) = unison_setup(&graph);
        let oracle = GoodGraphOracle::new(alg);
        let mut sched = SynchronousScheduler;
        let clean = measure_availability(
            &alg,
            &graph,
            start.clone(),
            &mut sched,
            &oracle,
            &palette,
            0.0,
            200,
            3,
        );
        assert_eq!(clean.availability, 1.0);
        assert_eq!(clean.faults_injected, 0);
        let mut sched = SynchronousScheduler;
        let noisy = measure_availability(
            &alg, &graph, start, &mut sched, &oracle, &palette, 0.001, 400, 3,
        );
        assert!(noisy.availability > 0.5, "{noisy:?}");
    }

    #[test]
    fn availability_degrades_under_severe_noise() {
        let graph = Graph::cycle(6);
        let (alg, start, palette) = unison_setup(&graph);
        let oracle = GoodGraphOracle::new(alg);
        let mut sched = SynchronousScheduler;
        let mild = measure_availability(
            &alg,
            &graph,
            start.clone(),
            &mut sched,
            &oracle,
            &palette,
            0.001,
            300,
            9,
        );
        let mut sched = SynchronousScheduler;
        let severe = measure_availability(
            &alg, &graph, start, &mut sched, &oracle, &palette, 0.1, 300, 9,
        );
        assert!(
            severe.availability < mild.availability,
            "{severe:?} vs {mild:?}"
        );
        assert!(severe.faults_injected > mild.faults_injected);
    }

    #[test]
    #[should_panic(expected = "palette must not be empty")]
    fn empty_palette_panics() {
        let graph = Graph::path(2);
        let (alg, start, _) = unison_setup(&graph);
        let mut sched = SynchronousScheduler;
        let _ = run_burst_recovery_trials(
            &alg,
            &graph,
            start,
            &mut sched,
            &GoodGraphOracle::new(alg),
            &[],
            1,
            1,
            10,
            0,
        );
    }
}
