//! # bio-networks — fault-tolerant biological network scenarios
//!
//! The paper's title application: cellular populations that must maintain a global
//! behaviour — a single decision maker, a spaced pattern of differentiated cells, a
//! coherent advancing pulse — while individual cells are anonymous, bounded-memory,
//! asynchronously activated and exposed to transient environmental faults. Those are
//! exactly the assumptions of the stone age model, and the self-stabilizing
//! algorithms of this workspace are the mechanisms.
//!
//! The crate provides:
//!
//! * [`scenario`] — topology builders for the three canonical scenarios:
//!   quorum-sensing colonies (leader election on damaged cliques), epithelial tissue
//!   sheets (MIS via lateral inhibition on grids/tori), and segmented pulse fields
//!   (asynchronous unison on clustered graphs);
//! * [`recovery`] — fault-injection measurement: burst-recovery time and availability
//!   under continuous noise;
//! * ready-made bindings ([`pulse_unison_recovery`], [`tissue_mis_availability`],
//!   [`colony_leader_recovery`]) that connect the scenarios to the concrete
//!   algorithms, used by the examples and by experiment E10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;
pub mod scenario;

pub use recovery::{
    measure_availability, run_burst_recovery_trials, AvailabilityReport, RecoveryStats,
};
pub use scenario::{ColonyScenario, Harshness, PulseScenario, TissueScenario};

use sa_model::algorithm::StateSpace;
use sa_model::graph::Graph;
use sa_model::scheduler::UniformRandomScheduler;
use sa_protocols::mis::{Decision, MisState};
use sa_protocols::restart::{RestartState, RestartableAlgorithm};
use sa_synchronizer::{async_le, async_mis, SyncState};
use unison_core::{AlgAu, GoodGraphOracle, Predicates, Turn};

/// Runs AlgAU as the pulse coordinator of a [`PulseScenario`] and measures recovery
/// from `trials` fault bursts, each scrambling a [`Harshness`]-dependent fraction of
/// the cells.
///
/// Returns the recovery statistics (rounds are asynchronous rounds under a uniformly
/// random activation schedule).
pub fn pulse_unison_recovery(
    scenario: &PulseScenario,
    harshness: Harshness,
    trials: usize,
    seed: u64,
) -> RecoveryStats {
    let graph = scenario.build();
    let alg = AlgAu::new(scenario.diameter_bound());
    let palette = alg.states();
    let start = vec![Turn::Able(1); graph.node_count()];
    let burst = ((graph.node_count() as f64) * harshness.burst_fraction()).ceil() as usize;
    let mut scheduler = UniformRandomScheduler::new(0.5);
    run_burst_recovery_trials(
        &alg,
        &graph,
        start,
        &mut scheduler,
        &GoodGraphOracle::new(alg),
        &palette,
        burst.max(1),
        trials,
        200_000,
        seed,
    )
}

/// Legitimacy of the tissue pattern: every cell decided, the differentiated (`IN`)
/// cells independent, every other cell next to a differentiated one, and no cell in
/// the middle of a reset.
///
/// Exposed for the sweep runner's `mis` algorithm axis and `tissue` scenario
/// units (`sa_bench::sweep`), which combine it with AU-clock goodness.
pub fn tissue_pattern_legitimate(
    graph: &Graph,
    config: &[SyncState<RestartState<MisState>>],
) -> bool {
    let mut in_set = vec![false; config.len()];
    for (v, s) in config.iter().enumerate() {
        match &s.current {
            RestartState::Restart(_) => return false,
            RestartState::Host(h) => match h.decision {
                Decision::Undecided => return false,
                Decision::In => in_set[v] = true,
                Decision::Out => {}
            },
        }
    }
    sa_protocols::mis::MisChecker::check_membership(graph, &in_set).is_empty()
}

/// Per-node decomposition of [`tissue_pattern_legitimate`]: node `v` is ok iff
/// it is a decided host and its decision is locally consistent — `In` cells
/// have no `In` neighbor (independence), `Out` cells have one (maximality).
///
/// `tissue_pattern_legitimate(g, c) ⟺ ∀v. tissue_node_ok(g, c, v)`: any
/// mid-reset or undecided cell fails its own check, and once every cell is a
/// decided host the conjunction is exactly
/// [`sa_protocols::mis::MisChecker::check_membership`] (independence is
/// symmetric per edge, maximality is per non-`In` node). This is what lets the
/// sweep's tissue units use the incremental legitimacy tracker.
pub fn tissue_node_ok(
    graph: &Graph,
    config: &[SyncState<RestartState<MisState>>],
    v: usize,
) -> bool {
    let decision_of = |u: usize| match &config[u].current {
        RestartState::Restart(_) => None,
        RestartState::Host(h) => Some(h.decision),
    };
    match decision_of(v) {
        None | Some(Decision::Undecided) => false,
        Some(Decision::In) => graph
            .neighbors(v)
            .iter()
            .all(|&u| decision_of(u) != Some(Decision::In)),
        Some(Decision::Out) => graph
            .neighbors(v)
            .iter()
            .any(|&u| decision_of(u) == Some(Decision::In)),
    }
}

/// [`tissue_node_ok`] on a uniform configuration (every cell in `state`):
/// exact verdict for the tracker's uniform fast path. Undecided or mid-reset
/// is never legitimate; all-`In` is legitimate only on edge-free graphs
/// (independence); all-`Out` never is (maximality needs an `In` neighbor).
pub fn tissue_uniform_ok(graph: &Graph, state: &SyncState<RestartState<MisState>>) -> bool {
    match &state.current {
        RestartState::Restart(_) => false,
        RestartState::Host(h) => match h.decision {
            Decision::Undecided | Decision::Out => false,
            Decision::In => graph.edge_count() == 0,
        },
    }
}

/// Runs the asynchronous MIS algorithm as the lateral-inhibition mechanism of a
/// [`TissueScenario`] under continuous environmental noise, and reports the fraction
/// of time the tissue exhibits a correct spacing pattern.
pub fn tissue_mis_availability(
    scenario: &TissueScenario,
    harshness: Harshness,
    rounds: u64,
    seed: u64,
) -> AvailabilityReport {
    let graph = scenario.build();
    let alg = async_mis(scenario.diameter_bound());
    let start = vec![alg.fresh_state(); graph.node_count()];
    // The fault palette corrupts the unison coordinate and the host decision fields;
    // sampling the full composite product would be enormous, so we corrupt with
    // representative states (arbitrary clock positions × arbitrary decisions).
    let mut palette = Vec::new();
    for turn in alg.unison().states() {
        for decision in [Decision::Undecided, Decision::In, Decision::Out] {
            let mut host = alg.inner().host().initial_state();
            host.decision = decision;
            host.detect_id = if decision == Decision::In { 1 } else { 0 };
            palette.push(SyncState {
                current: RestartState::Host(host),
                previous: RestartState::Host(host),
                turn,
            });
        }
    }
    let mut scheduler = UniformRandomScheduler::new(0.5);
    measure_availability(
        &alg,
        &graph,
        start,
        &mut scheduler,
        &tissue_pattern_legitimate,
        &palette,
        harshness.per_node_rate(),
        rounds,
        seed,
    )
}

/// Legitimacy of the colony: exactly one leader and no cell mid-reset.
///
/// Exposed for the sweep runner's `le` algorithm axis and `colony` scenario
/// units (`sa_bench::sweep`), which combine it with AU-clock goodness.
pub fn colony_leader_legitimate(
    _graph: &Graph,
    config: &[SyncState<RestartState<sa_protocols::le::LeState>>],
) -> bool {
    let mut leaders = 0;
    for s in config {
        match &s.current {
            RestartState::Restart(_) => return false,
            RestartState::Host(h) => {
                if h.leader {
                    leaders += 1;
                }
            }
        }
    }
    leaders == 1
}

/// Per-node decomposition of [`colony_leader_legitimate`] for the incremental
/// tracker, as a *weighted* predicate: node `v` is ok iff it is not mid-reset,
/// and its weight is its leader bit ([`colony_leader_weight`]). The colony is
/// legitimate iff every node is ok **and** the weight sum equals 1 — exactly
/// "no resets and one leader".
pub fn colony_node_ok(
    config: &[SyncState<RestartState<sa_protocols::le::LeState>>],
    v: usize,
) -> bool {
    !matches!(&config[v].current, RestartState::Restart(_))
}

/// The leader bit of node `v` as an aggregate weight (1 for a host claiming
/// leadership, 0 otherwise — including mid-reset cells, which have no claim).
/// Depends only on `config[v]`, as the tracker's delta updates require.
pub fn colony_leader_weight(
    config: &[SyncState<RestartState<sa_protocols::le::LeState>>],
    v: usize,
) -> i64 {
    match &config[v].current {
        RestartState::Restart(_) => 0,
        RestartState::Host(h) => i64::from(h.leader),
    }
}

/// Runs the asynchronous LE algorithm as the quorum-sensing decision mechanism of a
/// [`ColonyScenario`] and measures recovery from `trials` fault bursts.
pub fn colony_leader_recovery(
    scenario: &ColonyScenario,
    harshness: Harshness,
    trials: usize,
    seed: u64,
) -> RecoveryStats {
    let graph = scenario.build(seed);
    let alg = async_le(scenario.diameter_bound());
    let start = vec![alg.fresh_state(); graph.node_count()];
    // Representative corrupted states: arbitrary clocks, arbitrary leader claims.
    let mut palette = Vec::new();
    for turn in alg.unison().states() {
        for leader in [false, true] {
            let mut host = alg.inner().host().initial_state();
            host.leader = leader;
            host.stage = sa_protocols::le::Stage::Verification;
            palette.push(SyncState {
                current: RestartState::Host(host),
                previous: RestartState::Host(host),
                turn,
            });
        }
    }
    let burst = ((graph.node_count() as f64) * harshness.burst_fraction()).ceil() as usize;
    let mut scheduler = UniformRandomScheduler::new(0.5);
    run_burst_recovery_trials(
        &alg,
        &graph,
        start,
        &mut scheduler,
        &colony_leader_legitimate,
        &palette,
        burst.max(1),
        trials,
        400_000,
        seed,
    )
}

/// A coherence score for a pulse field: `1 − (max neighbor clock discrepancy) / k`.
/// A perfectly coherent field scores 1; a field with the largest possible neighbor
/// discrepancy scores 0. Exposed for the pulse example's reporting.
pub fn pulse_coherence(algorithm: &AlgAu, graph: &Graph, config: &[Turn]) -> f64 {
    let p = Predicates::new(algorithm, graph);
    let max_disc = p.max_discrepancy(config) as f64;
    1.0 - max_disc / algorithm.k() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_recovery_succeeds() {
        let scenario = PulseScenario::new(4, 3);
        let stats = pulse_unison_recovery(&scenario, Harshness::Moderate, 3, 42);
        assert!(stats.fully_recovered(), "{stats:?}");
        assert_eq!(stats.recovery_rounds.len(), 3);
    }

    #[test]
    fn tissue_availability_is_reasonable_under_mild_noise() {
        let scenario = TissueScenario::sheet(3, 3);
        let report = tissue_mis_availability(&scenario, Harshness::Mild, 1500, 7);
        // the tissue spends the bulk of its time with a correct pattern
        assert!(report.availability > 0.3, "{report:?}");
    }

    #[test]
    fn colony_recovers_a_single_leader_after_bursts() {
        let scenario = ColonyScenario::new(8);
        let stats = colony_leader_recovery(&scenario, Harshness::Moderate, 2, 11);
        assert!(stats.fully_recovered(), "{stats:?}");
    }

    #[test]
    fn coherence_is_one_on_synchronized_fields_and_lower_on_split_ones() {
        let graph = Graph::cycle(4);
        let alg = AlgAu::new(graph.diameter());
        let synced = vec![Turn::Able(3); 4];
        assert_eq!(pulse_coherence(&alg, &graph, &synced), 1.0);
        let split = vec![Turn::Able(3), Turn::Able(3), Turn::Able(-3), Turn::Able(-3)];
        assert!(pulse_coherence(&alg, &graph, &split) < 1.0);
    }
}
