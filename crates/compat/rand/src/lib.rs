//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace is built in environments without access to crates.io, so the
//! subset of the `rand` 0.8 API that the simulator actually uses is provided
//! here as an in-tree crate with the same package name. The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a fast,
//! well-studied, allocation-free PRNG that is more than adequate for driving
//! simulations (it is **not** cryptographically secure, and neither API nor
//! stream compatibility with the real `rand::rngs::StdRng` is promised — only
//! determinism per seed within this workspace).
//!
//! Provided surface:
//!
//! * [`RngCore`] — the object-safe generator trait (`next_u32`, `next_u64`,
//!   `fill_bytes`), implemented for `&mut R` so `&mut dyn RngCore` works;
//! * [`Rng`] — the user-facing extension trait with [`Rng::gen_range`] (over
//!   `Range`/`RangeInclusive` of the primitive integer types) and
//!   [`Rng::gen_bool`], blanket-implemented for every `RngCore`;
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] and [`thread_rng`] / [`rngs::ThreadRng`];
//! * [`rngs::CounterRng`] — a counter-based (Philox-style) generator whose
//!   stream is addressed by a key rather than evolved sequentially, the
//!   primitive behind the simulator's order-invariant per-node randomness
//!   (this one is an extension over the real `rand` API).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniformly random words.
///
/// Object safe, so algorithms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random mantissa bits give a uniform float in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` in `[0, span)` without modulo bias (`span > 0`).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = sample_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                let offset = sample_below(rng, span as u64);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with the real `rand::rngs::StdRng` (which is
    /// ChaCha-based); determinism per seed is all the simulator relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
    #[inline]
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(*state)
    }

    /// A *counter-based* generator: the `i`-th output is a pure function of
    /// `(key, i)`, with no sequential state beyond the counter itself.
    ///
    /// Counter-based RNGs (in the spirit of Philox/Threefry from "Parallel
    /// random numbers: as easy as 1, 2, 3", SC'11) make random streams
    /// *addressable*: two parties that agree on the key draw identical
    /// sequences regardless of when, where, or in which order they draw. The
    /// simulator keys one stream per `(seed, node, activation time)` triple,
    /// which makes randomized transitions independent of the order in which
    /// an activation set is evaluated — and therefore identical between the
    /// serial and sharded step engines, shard count notwithstanding.
    ///
    /// The construction here is the SplitMix64 stream cipher form: output
    /// `i` is `mix64(key + i·φ)` where `φ` is the golden-ratio increment and
    /// `mix64` the SplitMix64 finalizer. Statistically this is exactly a
    /// SplitMix64 sequence started at `key` — adequate for simulation, not
    /// cryptography.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CounterRng {
        key: u64,
        ctr: u64,
    }

    impl CounterRng {
        /// A stream addressed directly by a fully mixed 64-bit key.
        pub fn from_key(key: u64) -> Self {
            CounterRng { key, ctr: 0 }
        }

        /// A stream addressed by a `(seed, stream, substream)` triple — e.g.
        /// `(execution seed, node id, step counter)`. The triple is absorbed
        /// through two finalizer rounds with distinct odd multipliers so that
        /// nearby triples (consecutive nodes, consecutive steps) land on
        /// uncorrelated keys.
        pub fn keyed(seed: u64, stream: u64, substream: u64) -> Self {
            let k = mix64(seed ^ stream.wrapping_mul(0xa24b_aed4_963e_e407));
            let k = mix64(k ^ substream.wrapping_mul(0x9fb2_1c65_1e98_df25));
            CounterRng { key: k, ctr: 0 }
        }

        /// Number of values drawn from the stream so far.
        pub fn draws(&self) -> u64 {
            self.ctr
        }
    }

    impl RngCore for CounterRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let z = self
                .key
                .wrapping_add(self.ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            self.ctr += 1;
            mix64(z)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl StdRng {
        /// The generator's internal xoshiro256++ state words, for
        /// checkpointing. Restoring via [`StdRng::from_state`] resumes the
        /// stream exactly where [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics if the state is all-zero (xoshiro256++ cannot leave the
        /// zero state; no call to [`StdRng::state`] can produce it).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s != [0; 4],
                "the all-zero state is not a valid xoshiro256++ state"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro256++ requires a non-zero state; SplitMix64 cannot emit
            // four zero words from any seed, but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// A non-deterministically seeded generator, as returned by
    /// [`thread_rng`](super::thread_rng).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            ThreadRng {
                inner: StdRng::seed_from_u64(nanos ^ unique.rotate_left(32)),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

/// Returns a freshly (non-deterministically) seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::{CounterRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn counter_rng_is_deterministic_per_key() {
        let mut a = CounterRng::keyed(7, 3, 11);
        let mut b = CounterRng::keyed(7, 3, 11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.draws(), 100);
    }

    #[test]
    fn counter_rng_streams_are_distinct_across_the_triple() {
        let base: Vec<u64> = {
            let mut r = CounterRng::keyed(1, 2, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        for (s, n, t) in [(2, 2, 3), (1, 3, 3), (1, 2, 4), (0, 0, 0)] {
            let mut r = CounterRng::keyed(s, n, t);
            let other: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "stream ({s}, {n}, {t}) collided");
        }
    }

    #[test]
    fn counter_rng_draws_are_roughly_uniform() {
        let mut rng = CounterRng::keyed(42, 0, 0);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[rng.gen_range(0..16usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn counter_rng_from_key_matches_zero_counter_stream() {
        let mut a = CounterRng::from_key(0xdead_beef);
        let mut b = CounterRng::from_key(0xdead_beef);
        b.next_u64();
        // `a` one step behind `b`'s stream: from_key starts at counter 0.
        let first = a.next_u64();
        let second = a.next_u64();
        assert_eq!(second, b.next_u64());
        assert_ne!(first, second);
    }

    #[test]
    fn std_rng_state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(41);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn std_rng_rejects_zero_state() {
        StdRng::from_state([0; 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes_and_rough_fairness() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: usize = dyn_rng.gen_range(0..10);
        assert!(x < 10);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        rng.gen_bool(1.5);
    }
}
