//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches (`benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_batched`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) with honest wall-clock measurement: every
//! benchmark is calibrated to a target sample duration, measured over
//! `sample_size` samples, and summarized by median ns/iteration.
//!
//! In addition to the textual report, the run's results are written as JSON to
//! the path named by the `BENCH_MICRO_JSON` environment variable (default
//! `BENCH_micro.json` in the current directory) so CI can track the
//! performance trajectory across commits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched-setup benchmarks trade setup cost against measurement noise.
/// The stand-in times every batch individually, so the variants only influence
/// batch length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batches of many iterations.
    SmallInput,
    /// Large per-iteration state: one iteration per batch.
    LargeInput,
    /// Always exactly one iteration per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample used after calibration.
    pub iters_per_sample: u64,
}

/// The benchmark harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_with_input(BenchmarkId::from_parameter(""), &(), |b, _| f(b));
        group.finish();
    }

    /// All results measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Records a non-timing scalar measurement (e.g. a derived rounds/sec
    /// figure or a peak-RSS proxy) as a benchmark record, so it lands in
    /// `BENCH_micro.json` alongside the timings and is diffed by
    /// `sa bench-diff` like any other key. The value is stored in the
    /// `median_ns`/`mean_ns`/`min_ns` fields verbatim.
    pub fn record_measurement(
        &mut self,
        group: impl Into<String>,
        bench: impl Into<String>,
        value: f64,
    ) {
        let (group, bench) = (group.into(), bench.into());
        println!("{group:<28} {bench:<14} recorded {value:>12.1}");
        self.records.push(BenchRecord {
            group,
            bench,
            median_ns: value,
            mean_ns: value,
            min_ns: value,
            samples: 1,
            iters_per_sample: 1,
        });
    }

    /// Prints the final report and writes the JSON trajectory file. Called by
    /// [`criterion_main!`]; harmless to call again.
    pub fn final_summary(&self) {
        let path = std::env::var("BENCH_MICRO_JSON").unwrap_or_else(|_| "BENCH_micro.json".into());
        let json = records_to_json(&self.records);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            eprintln!("benchmark results written to {path}");
        }
    }
}

fn records_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            escape(&r.group),
            escape(&r.bench),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A group of benchmarks sharing a name and a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark (criterion's default is 100;
    /// the stand-in uses 20 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures `f`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        let record = bencher.into_record(&self.name, &id.id);
        println!(
            "{:<28} {:<14} median {:>12.1} ns/iter   (mean {:.1}, min {:.1}, {} samples × {} iters)",
            self.name, id.id, record.median_ns, record.mean_ns, record.min_ns, record.samples,
            record.iters_per_sample,
        );
        self.criterion.records.push(record);
        self
    }

    /// Finishes the group (a no-op; results were recorded eagerly).
    pub fn finish(&mut self) {}
}

const TARGET_SAMPLE: Duration = Duration::from_millis(8);

/// Per-benchmark measurement driver.
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns_per_iter: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Benchmarks `routine` by running it repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: find an iteration count filling the target sample time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE / 2 || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(ns / iters as f64);
        }
    }

    /// Benchmarks `routine` on fresh input produced by `setup`; only the
    /// routine is timed. Like the real criterion, the routine's outputs are
    /// collected during the batch and dropped *after* the timer stops, so
    /// teardown cost (e.g. a benchmarked execution joining its worker pool)
    /// does not pollute the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on a single run (setup excluded from timing).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let mut outputs: Vec<O> = Vec::with_capacity(iters as usize);
            let start = Instant::now();
            for input in inputs {
                outputs.push(black_box(routine(input)));
            }
            let ns = start.elapsed().as_nanos() as f64;
            drop(outputs);
            self.samples_ns_per_iter.push(ns / iters as f64);
        }
    }

    fn into_record(mut self, group: &str, bench: &str) -> BenchRecord {
        if self.samples_ns_per_iter.is_empty() {
            self.samples_ns_per_iter.push(0.0);
        }
        self.samples_ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
        let n = self.samples_ns_per_iter.len();
        let median = self.samples_ns_per_iter[n / 2];
        let mean = self.samples_ns_per_iter.iter().sum::<f64>() / n as f64;
        BenchRecord {
            group: group.to_string(),
            bench: bench.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: self.samples_ns_per_iter[0],
            samples: n,
            iters_per_sample: self.iters_per_sample,
        }
    }
}

/// Groups benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
        assert_eq!(c.records().len(), 1);
        assert!(c.records()[0].median_ns >= 0.0);
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke-batched");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            b.iter_batched(
                || (0..n as u64).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].bench, "sum/8");
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let records = vec![BenchRecord {
            group: "g".into(),
            bench: "b\"1".into(),
            median_ns: 1.5,
            mean_ns: 2.0,
            min_ns: 1.0,
            samples: 3,
            iters_per_sample: 10,
        }];
        let json = records_to_json(&records);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\\\"1"));
    }
}
