//! # sa-synchronizer — from synchronous to asynchronous self-stabilization
//!
//! This crate implements Section 4 of Emek & Keren (PODC 2021): a self-stabilizing
//! synchronizer for the stone age model, establishing Corollary 1.2. Given a
//! *synchronous* self-stabilizing algorithm `Π = ⟨Q, Q_O, ω, δ⟩` (state space `g(D)`,
//! stabilization time `f(n, D)`), the transformer produces an *asynchronous*
//! self-stabilizing algorithm `Π*` with state space `O(D · g(D)²)` and stabilization
//! time `f(n, D) + O(D³)`.
//!
//! The construction composes `Π` with the asynchronous unison algorithm
//! [`AlgAu`]: the `Π*` state of a node is a triple
//! `(q, q′, ν) ∈ Q × Q × T` holding the node's current simulated `Π`-state, its
//! previous simulated `Π`-state and its AlgAU turn. AlgAU runs on the third
//! coordinate; every time its clock advances (a type AA transition `ν → ν′`), one
//! simulated synchronous step of `Π` is executed using the *simulated signal*: state
//! `r ∈ Q` is simulated-sensed iff some neighbor exposes a `Π*`-state of the form
//! `(r, ·, ν)` (a neighbor still in the same simulated round) or `(·, r, ν′)` (a
//! neighbor that has already advanced past it).
//!
//! The headline applications are the **asynchronous** self-stabilizing LE and MIS
//! algorithms obtained by transforming AlgLE and AlgMIS ([`async_le`], [`async_mis`]).
//!
//! ## Example
//!
//! ```
//! use sa_model::prelude::*;
//! use sa_model::checker::measure_static_stabilization;
//! use sa_synchronizer::async_mis;
//!
//! let graph = Graph::cycle(6);
//! let alg = async_mis(graph.diameter());
//! let mut exec = ExecutionBuilder::new(&alg, &graph)
//!     .seed(3)
//!     .uniform(alg.fresh_state());
//! let mut sched = UniformRandomScheduler::new(0.7);
//! let checker = alg.checker();
//! let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 4000, 100);
//! assert!(report.stabilization_round.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;
use sa_model::algorithm::{Algorithm, MaskedOutcome, MaskedTransition, StateSpace};
use sa_model::checker::TaskChecker;
use sa_model::graph::Graph;
use sa_model::signal::{mask_ops, DenseSignal, Signal, StateIndex};
use sa_protocols::le::LeChecker;
use sa_protocols::mis::MisChecker;
use sa_protocols::{alg_le, alg_mis, AlgLe, AlgMis};
use std::sync::Arc;
use unison_core::algau::TransitionKind;
use unison_core::{AlgAu, Turn};

/// A `Π*` state: the current simulated `Π`-state, the previous simulated `Π`-state
/// and the AlgAU turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyncState<S> {
    /// The node's current simulated `Π`-state (`q`).
    pub current: S,
    /// The node's previous simulated `Π`-state (`q′`).
    pub previous: S,
    /// The node's AlgAU turn (`ν`).
    pub turn: Turn,
}

/// The synchronizer transform `Π ↦ Π*` applied to an inner algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Synchronized<A> {
    inner: A,
    unison: AlgAu,
}

impl<A: Algorithm> Synchronized<A> {
    /// Wraps `inner` (a synchronous self-stabilizing algorithm for `D`-bounded
    /// diameter graphs) with the AlgAU-based synchronizer for the same bound.
    pub fn new(inner: A, diameter_bound: usize) -> Self {
        Synchronized {
            inner,
            unison: AlgAu::new(diameter_bound),
        }
    }

    /// The wrapped synchronous algorithm `Π`.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The AlgAU instance driving the simulated rounds.
    pub fn unison(&self) -> &AlgAu {
        &self.unison
    }

    /// A composite state with both simulated `Π`-coordinates set to `inner_state` and
    /// the AU clock at level 1. Useful as a benign starting configuration; the
    /// self-stabilization guarantee of course covers arbitrary configurations.
    pub fn lift(&self, inner_state: A::State) -> SyncState<A::State> {
        SyncState {
            current: inner_state.clone(),
            previous: inner_state,
            turn: Turn::Able(1),
        }
    }

    /// The AU clock value of a composite state (`None` while the node is in a faulty
    /// turn).
    pub fn clock_of(&self, state: &SyncState<A::State>) -> Option<u32> {
        match state.turn {
            Turn::Able(l) => Some(self.unison.clock_of_level(l)),
            Turn::Faulty(_) => None,
        }
    }
}

impl<A: Algorithm + StateSpace> Synchronized<A> {
    /// The size of the composite state space `|Q|² · |T|` (the `O(D · g(D)²)` bound of
    /// Corollary 1.2), computed without materializing it.
    pub fn state_space_size(&self) -> usize {
        let q = self.inner.state_count();
        q * q * self.unison.state_count()
    }
}

impl<A: Algorithm> Algorithm for Synchronized<A> {
    type State = SyncState<A::State>;
    type Output = A::Output;

    fn output(&self, state: &Self::State) -> Option<A::Output> {
        if state.turn.is_able() {
            self.inner.output(&state.current)
        } else {
            None
        }
    }

    fn transition(
        &self,
        state: &Self::State,
        signal: &Signal<Self::State>,
        rng: &mut dyn RngCore,
    ) -> Self::State {
        // Run AlgAU on the turn coordinate.
        let turn_signal: Signal<Turn> = signal.map(|s| s.turn);
        let kind = self.unison.transition_kind(&state.turn, &turn_signal);
        let next_turn = self.unison.next_turn(&state.turn, &turn_signal);

        if kind != TransitionKind::AbleAble {
            // The AU clock did not advance: the simulated Π-state is untouched.
            return SyncState {
                current: state.current.clone(),
                previous: state.previous.clone(),
                turn: next_turn,
            };
        }

        // The clock advances ν → ν′: execute one simulated synchronous step of Π.
        let current_turn = state.turn;
        let advanced_turn = next_turn;
        let simulated_signal: Signal<A::State> = signal.filter_map(|u| {
            if u.turn == current_turn {
                Some(u.current.clone())
            } else if u.turn == advanced_turn {
                Some(u.previous.clone())
            } else {
                None
            }
        });
        let next_inner = self
            .inner
            .transition(&state.current, &simulated_signal, rng);
        SyncState {
            current: next_inner,
            previous: state.current.clone(),
            turn: advanced_turn,
        }
    }

    fn dense_state_space(&self) -> Option<Vec<Self::State>> {
        // The composite space is |Q|² · |T| (Corollary 1.2), which explodes
        // quickly; enumerate it only while it stays small enough for the
        // executor's dense engine to accept, and let the size check run
        // *before* materializing the product.
        use sa_model::algorithm::StateSpace as _;
        let inner = self.inner.dense_state_space()?;
        let turns = self.unison.states();
        let count = inner
            .len()
            .checked_mul(inner.len())?
            .checked_mul(turns.len())?;
        if count > sa_model::executor::MAX_DENSE_STATES {
            return None;
        }
        let mut states = Vec::with_capacity(count);
        for current in &inner {
            for previous in &inner {
                for turn in &turns {
                    states.push(SyncState {
                        current: current.clone(),
                        previous: previous.clone(),
                        turn: *turn,
                    });
                }
            }
        }
        Some(states)
    }

    fn transition_is_deterministic(&self) -> bool {
        // The unison coordinate (AlgAU) is deterministic; the composite is a
        // pure function of (state, signal) whenever the inner algorithm is.
        self.inner.transition_is_deterministic()
    }

    fn compile_masked<'s>(
        &'s self,
        index: &Arc<StateIndex<SyncState<A::State>>>,
    ) -> Option<Box<dyn MaskedTransition<SyncState<A::State>> + 's>> {
        SyncMasks::build(self, index)
            .map(|m| Box::new(m) as Box<dyn MaskedTransition<SyncState<A::State>> + 's>)
    }

    fn name(&self) -> &'static str {
        "synchronized"
    }
}

/// Sentinel marking "this rule does not apply to this turn".
const NO_RULE: u32 = u32::MAX;

/// The mask-compiled transition of a [`Synchronized`] composite (active
/// whenever the product space `|Q|² · |T|` fits the executor's dense limit).
///
/// Every AlgAU condition on the turn coordinate is a per-sensed-state
/// predicate of the *composite* states' turn components, so it compiles to
/// word-level subset / intersection masks over the composite index — keyed
/// by the node's own turn only, `|T|` rows instead of `|Q|²·|T|`. On a clock
/// advance (type AA), the *simulated signal* is recovered with precompiled
/// **projection masks**: for the own turn `ν` and each inner state `r`,
/// `proj[ν][r]` holds the composite states of the form `(r, ·, ν)` or
/// `(·, r, ν′)` — one intersection test per inner state builds the simulated
/// `{0,1}^Q` vector directly as a dense inner signal, replacing the closure
/// path's two `BTreeSet`-allocating `map`/`filter_map` passes. The inner
/// transition itself then runs unchanged (same values, same RNG stream), so
/// randomized inner algorithms keep coin-stream parity.
///
/// The composite index layout is verified at compile time (sorted product =
/// lexicographic `(current, previous, turn)`), which makes the state
/// arithmetic `idx = (ci·|Q| + pi)·|T| + ti` exact.
struct SyncMasks<'a, A: Algorithm> {
    sync: &'a Synchronized<A>,
    inner_index: Arc<StateIndex<A::State>>,
    turns: Vec<Turn>,
    /// `|T|`, `|Q|`, composite words, inner words.
    t: usize,
    qi: usize,
    words: usize,
    inner_words: usize,
    /// Per-turn rule data (`ti`-indexed rows of `words` each).
    able: Vec<bool>,
    aa_allowed: Vec<u64>,
    protected: Vec<u64>,
    af_trigger: Vec<u64>,
    fa_block: Vec<u64>,
    aa_next: Vec<u32>,
    af_next: Vec<u32>,
    fa_next: Vec<u32>,
    /// Projection masks: row `ti * qi + ri` marks the composite states that
    /// contribute inner state `ri` to the simulated signal of a node whose
    /// own turn is `turns[ti]` (able turns only; other rows stay empty).
    proj: Vec<u64>,
}

impl<'a, A: Algorithm> SyncMasks<'a, A> {
    fn build(
        sync: &'a Synchronized<A>,
        index: &Arc<StateIndex<SyncState<A::State>>>,
    ) -> Option<Self> {
        let inner_states = sync.inner.dense_state_space()?;
        let inner_index = Arc::new(StateIndex::new(inner_states));
        let mut turns = StateSpace::states(&sync.unison);
        turns.sort_unstable();
        turns.dedup();
        let (qi, t) = (inner_index.len(), turns.len());
        if qi == 0 || t == 0 || index.len() != qi.checked_mul(qi)?.checked_mul(t)? {
            return None;
        }
        // Verify the sorted-product layout the state arithmetic relies on:
        // index position i ⟺ (current, previous, turn) digits of i in mixed
        // radix (qi, qi, t). `SyncState`'s derived lexicographic `Ord` makes
        // this hold whenever the index is the sorted product, but check —
        // never guess.
        for (i, state) in index.states().iter().enumerate() {
            let (ci, pi, ti) = (i / (t * qi), (i / t) % qi, i % t);
            if state.current != *inner_index.state(ci)
                || state.previous != *inner_index.state(pi)
                || state.turn != turns[ti]
            {
                return None;
            }
        }
        let words = index.words();
        let len = index.len();
        let mut able = vec![false; t];
        let mut aa_allowed = vec![0u64; t * words];
        let mut protected = vec![0u64; t * words];
        let mut af_trigger = vec![0u64; t * words];
        let mut fa_block = vec![0u64; t * words];
        let mut aa_next = vec![NO_RULE; t];
        let mut af_next = vec![NO_RULE; t];
        let mut fa_next = vec![NO_RULE; t];
        let mut proj = vec![0u64; t * qi * words];
        let turn_pos = |turn: &Turn| turns.binary_search(turn).ok().map(|p| p as u32);
        // Marks every composite state carrying `member` as its turn in row
        // `ti` of `table`. A member that is not an actual turn (e.g. the AF
        // trigger `Faulty(±1)`) has no composite states and contributes no
        // bit, matching the closure path's `senses`.
        let set_for_turn = |table: &mut [u64], ti: usize, member: &Turn| {
            if let Ok(tm) = turns.binary_search(member) {
                for cp in 0..qi * qi {
                    let j = cp * t + tm;
                    table[ti * words + j / 64] |= 1u64 << (j % 64);
                }
            }
        };
        for ti in 0..t {
            // The rule encoding is shared with AlgAU's own mask compiler
            // (one source of truth for Table 1 besides `next_turn`).
            let rule = sync.unison.turn_rule(turns[ti]);
            able[ti] = turns[ti].is_able();
            if let Some(next) = rule.aa_next {
                aa_next[ti] = turn_pos(&next)?;
                for member in &rule.aa_allowed {
                    set_for_turn(&mut aa_allowed, ti, member);
                }
                // Projection rows for the AA simulated signal: a composite
                // state (r, ·, ν) contributes its *current* coordinate,
                // (·, r, ν′) its *previous* one.
                let own = turns[ti];
                for j in 0..len {
                    let (cj, pj, tj) = (j / (t * qi), (j / t) % qi, j % t);
                    let contributes = if turns[tj] == own {
                        Some(cj)
                    } else if turns[tj] == next {
                        Some(pj)
                    } else {
                        None
                    };
                    if let Some(ri) = contributes {
                        proj[(ti * qi + ri) * words + j / 64] |= 1u64 << (j % 64);
                    }
                }
            }
            if let Some(next) = rule.af_next {
                af_next[ti] = turn_pos(&next)?;
                for member in &rule.protected {
                    set_for_turn(&mut protected, ti, member);
                }
                for member in &rule.af_trigger {
                    set_for_turn(&mut af_trigger, ti, member);
                }
            }
            if let Some(next) = rule.fa_next {
                fa_next[ti] = turn_pos(&next)?;
                for member in &rule.fa_block {
                    set_for_turn(&mut fa_block, ti, member);
                }
            }
        }
        Some(SyncMasks {
            sync,
            inner_index,
            turns,
            t,
            qi,
            words,
            inner_words: qi.div_ceil(64),
            able,
            aa_allowed,
            protected,
            af_trigger,
            fa_block,
            aa_next,
            af_next,
            fa_next,
            proj,
        })
    }

    #[inline]
    fn row<'t>(&self, table: &'t [u64], ti: usize) -> &'t [u64] {
        &table[ti * self.words..(ti + 1) * self.words]
    }

    /// Composite index of `(current = ci, previous = pi, turn = ti)`.
    #[inline]
    fn compose(&self, ci: usize, pi: usize, ti: u32) -> u32 {
        ((ci * self.qi + pi) * self.t) as u32 + ti
    }
}

impl<A: Algorithm> MaskedTransition<SyncState<A::State>> for SyncMasks<'_, A> {
    fn next_index(
        &self,
        state_idx: u32,
        signal_words: &[u64],
        rng: &mut dyn RngCore,
    ) -> MaskedOutcome<SyncState<A::State>> {
        let si = state_idx as usize;
        let (t, qi) = (self.t, self.qi);
        let (ci, pi, ti) = (si / (t * qi), (si / t) % qi, si % t);
        if !self.able[ti] {
            // FA: complete the detour unless an outward level is sensed.
            return if mask_ops::intersects(signal_words, self.row(&self.fa_block, ti)) {
                MaskedOutcome::Indexed(state_idx)
            } else {
                MaskedOutcome::Indexed(self.compose(ci, pi, self.fa_next[ti]))
            };
        }
        if mask_ops::subset(signal_words, self.row(&self.aa_allowed, ti)) {
            // AA: the clock advances — run one simulated synchronous step of
            // the inner algorithm on the projected signal.
            let mut inner_bits = vec![0u64; self.inner_words];
            for (ri, word) in (0..qi).map(|ri| (ri, ri / 64)) {
                let proj_row = &self.proj[(ti * qi + ri) * self.words..][..self.words];
                if mask_ops::intersects(signal_words, proj_row) {
                    inner_bits[word] |= 1u64 << (ri % 64);
                }
            }
            // One buffer allocation per clock advance (the closure path
            // allocates two `BTreeSet`s with per-state nodes instead).
            let sim = Signal::from_dense(DenseSignal::from_words(
                self.inner_index.clone(),
                inner_bits,
            ));
            let current = self.inner_index.state(ci);
            let next_inner = self.sync.inner.transition(current, &sim, rng);
            let advanced = self.aa_next[ti];
            return match self.inner_index.position(&next_inner) {
                Some(nci) => MaskedOutcome::Indexed(self.compose(nci, ci, advanced)),
                None => MaskedOutcome::Escaped(SyncState {
                    current: next_inner,
                    previous: current.clone(),
                    turn: self.turns[advanced as usize],
                }),
            };
        }
        if self.af_next[ti] != NO_RULE
            && (!mask_ops::subset(signal_words, self.row(&self.protected, ti))
                || mask_ops::intersects(signal_words, self.row(&self.af_trigger, ti)))
        {
            return MaskedOutcome::Indexed(self.compose(ci, pi, self.af_next[ti]));
        }
        MaskedOutcome::Indexed(state_idx)
    }
}

/// Adapts a checker for the inner (synchronous) algorithm to the composite algorithm
/// by projecting each composite state to its *current* simulated `Π`-state.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynchronizedChecker<C> {
    inner: C,
}

impl<C> SynchronizedChecker<C> {
    /// Wraps an inner checker.
    pub fn new(inner: C) -> Self {
        SynchronizedChecker { inner }
    }
}

impl<A, C> TaskChecker<Synchronized<A>> for SynchronizedChecker<C>
where
    A: Algorithm,
    C: TaskChecker<A>,
{
    fn check_snapshot(&self, graph: &Graph, config: &[SyncState<A::State>]) -> Vec<String> {
        let projected: Vec<A::State> = config.iter().map(|s| s.current.clone()).collect();
        self.inner.check_snapshot(graph, &projected)
    }

    fn check_window(&self, graph: &Graph, output_changes: &[u64], rounds: u64) -> Vec<String> {
        self.inner.check_window(graph, output_changes, rounds)
    }

    fn task_name(&self) -> &'static str {
        "synchronized-task"
    }
}

/// The asynchronous self-stabilizing MIS algorithm of Theorem 1.4 + Corollary 1.2:
/// AlgMIS lifted through the synchronizer.
pub type AsyncMis = Synchronized<AlgMis>;

/// The asynchronous self-stabilizing LE algorithm of Theorem 1.3 + Corollary 1.2:
/// AlgLE lifted through the synchronizer.
pub type AsyncLe = Synchronized<AlgLe>;

/// Builds the asynchronous MIS algorithm for diameter bound `D`.
pub fn async_mis(diameter_bound: usize) -> AsyncMis {
    Synchronized::new(alg_mis(diameter_bound.max(1)), diameter_bound.max(1))
}

/// Builds the asynchronous LE algorithm for diameter bound `D`.
pub fn async_le(diameter_bound: usize) -> AsyncLe {
    Synchronized::new(alg_le(diameter_bound.max(1)), diameter_bound.max(1))
}

impl AsyncMis {
    /// The canonical benign starting state (fresh MIS host, AU clock at level 1).
    pub fn fresh_state(&self) -> SyncState<<AlgMis as Algorithm>::State> {
        use sa_protocols::restart::RestartableAlgorithm;
        self.lift(sa_protocols::restart::RestartState::Host(
            self.inner().host().initial_state(),
        ))
    }

    /// The checker for the asynchronous MIS task.
    pub fn checker(&self) -> SynchronizedChecker<MisChecker> {
        SynchronizedChecker::new(MisChecker)
    }
}

impl AsyncLe {
    /// The canonical benign starting state (fresh LE host, AU clock at level 1).
    pub fn fresh_state(&self) -> SyncState<<AlgLe as Algorithm>::State> {
        use sa_protocols::restart::RestartableAlgorithm;
        self.lift(sa_protocols::restart::RestartState::Host(
            self.inner().host().initial_state(),
        ))
    }

    /// The checker for the asynchronous LE task.
    pub fn checker(&self) -> SynchronizedChecker<LeChecker> {
        SynchronizedChecker::new(LeChecker)
    }
}

/// Draws a random composite configuration: every node gets an independently random
/// inner current/previous pair from `inner_palette` and a random AlgAU turn. This is
/// the adversary's "arbitrary initial configuration" for `Π*` experiments.
///
/// # Panics
///
/// Panics if `inner_palette` is empty.
pub fn random_composite_configuration<S: Clone>(
    inner_palette: &[S],
    unison: &AlgAu,
    node_count: usize,
    seed: u64,
) -> Vec<SyncState<S>> {
    use rand::Rng;
    use rand::SeedableRng;
    assert!(!inner_palette.is_empty(), "inner palette must not be empty");
    let turns = sa_model::algorithm::StateSpace::states(unison);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..node_count)
        .map(|_| SyncState {
            current: inner_palette[rng.gen_range(0..inner_palette.len())].clone(),
            previous: inner_palette[rng.gen_range(0..inner_palette.len())].clone(),
            turn: turns[rng.gen_range(0..turns.len())],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::checker::measure_static_stabilization;
    use sa_model::executor::{Execution, ExecutionBuilder};
    use sa_model::graph::Graph;
    use sa_model::scheduler::{
        AdversarialLaggardScheduler, CentralScheduler, SynchronousScheduler, UniformRandomScheduler,
    };
    use unison_core::Predicates;

    /// A trivial synchronous inner algorithm: a round counter modulo `m`. Every
    /// simulated synchronous round increments it, so it doubles as a probe of the
    /// simulated-round structure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct RoundCounter {
        m: u8,
    }
    impl Algorithm for RoundCounter {
        type State = u8;
        type Output = u8;
        fn output(&self, s: &u8) -> Option<u8> {
            Some(*s)
        }
        fn transition(&self, s: &u8, signal: &Signal<u8>, _rng: &mut dyn RngCore) -> u8 {
            // adopt the maximum sensed value, then advance — a synchronous
            // self-stabilizing "agree on the round number" toy
            let max = signal.max_by_key(|x| *x).unwrap_or(*s).max(*s);
            (max + 1) % self.m
        }
        fn name(&self) -> &'static str {
            "round-counter"
        }
    }
    impl StateSpace for RoundCounter {
        fn states(&self) -> Vec<u8> {
            (0..self.m).collect()
        }
    }

    #[test]
    fn state_space_size_is_q_squared_times_turns() {
        let sync = Synchronized::new(RoundCounter { m: 5 }, 2);
        let k = 3 * 2 + 2;
        assert_eq!(sync.state_space_size(), 5 * 5 * (4 * k - 2));
    }

    #[test]
    fn output_requires_an_able_turn() {
        let sync = Synchronized::new(RoundCounter { m: 5 }, 1);
        let able = SyncState {
            current: 3u8,
            previous: 2,
            turn: Turn::Able(1),
        };
        let faulty = SyncState {
            current: 3u8,
            previous: 2,
            turn: Turn::Faulty(2),
        };
        assert_eq!(sync.output(&able), Some(3));
        assert_eq!(sync.output(&faulty), None);
    }

    #[test]
    fn clock_advance_triggers_exactly_one_simulated_step() {
        let sync = Synchronized::new(RoundCounter { m: 10 }, 1);
        let mut rng = rand::thread_rng();
        // lone node: AA applies every activation, so the counter increments each time
        let s0 = sync.lift(0u8);
        let sig = Signal::from_states(vec![s0]);
        let s1 = sync.transition(&s0, &sig, &mut rng);
        assert_eq!(s1.current, 1);
        assert_eq!(s1.previous, 0);
        assert_eq!(s1.turn, Turn::Able(2));
    }

    #[test]
    fn blocked_clock_freezes_the_simulation() {
        let sync = Synchronized::new(RoundCounter { m: 10 }, 1);
        let mut rng = rand::thread_rng();
        // a neighbor one clock value behind blocks the AA transition
        let me = SyncState {
            current: 4u8,
            previous: 3,
            turn: Turn::Able(3),
        };
        let behind = SyncState {
            current: 3u8,
            previous: 2,
            turn: Turn::Able(2),
        };
        let sig = Signal::from_states(vec![me, behind]);
        let next = sync.transition(&me, &sig, &mut rng);
        assert_eq!(next.current, 4, "simulated state must not advance");
        assert_eq!(next.turn, Turn::Able(3));
    }

    #[test]
    fn simulated_signal_mixes_current_and_previous() {
        let sync = Synchronized::new(RoundCounter { m: 100 }, 1);
        let mut rng = rand::thread_rng();
        // me at clock ν with value 5; one neighbor still at ν with value 7 (use its
        // current), one neighbor already advanced to ν′ with previous value 9 (use its
        // previous). The round counter adopts the max = 9 and increments to 10.
        let me = SyncState {
            current: 5u8,
            previous: 4,
            turn: Turn::Able(3),
        };
        let same_round = SyncState {
            current: 7u8,
            previous: 6,
            turn: Turn::Able(3),
        };
        let ahead = SyncState {
            current: 12u8,
            previous: 9,
            turn: Turn::Able(4),
        };
        let sig = Signal::from_states(vec![me, same_round, ahead]);
        let next = sync.transition(&me, &sig, &mut rng);
        assert_eq!(next.current, 10);
        assert_eq!(next.previous, 5);
        assert_eq!(next.turn, Turn::Able(4));
    }

    #[test]
    fn unison_coordinate_satisfies_au_safety_after_stabilization() {
        // Run the composite under an asynchronous scheduler and check that, after the
        // AU coordinate stabilizes, neighboring clock values always remain adjacent.
        let graph = Graph::cycle(6);
        let d = graph.diameter();
        let sync = Synchronized::new(RoundCounter { m: 7 }, d);
        let init =
            random_composite_configuration(&(0..7u8).collect::<Vec<_>>(), sync.unison(), 6, 5);
        let mut exec = Execution::new(&sync, &graph, init, 5);
        let mut sched = UniformRandomScheduler::new(0.6);
        let unison = *sync.unison();
        let oracle = move |g: &Graph, cfg: &[SyncState<u8>]| {
            let turns: Vec<Turn> = cfg.iter().map(|s| s.turn).collect();
            Predicates::new(&unison, g).graph_good(&turns)
        };
        let outcome = exec.run_until_legitimate(&mut sched, &oracle, 50_000);
        assert!(outcome.is_stabilized());
        // verify AU safety over a window
        let safety = unison_core::CyclicSafety::new(sync.unison().clock_size());
        for _ in 0..200 {
            exec.step_with(&mut sched);
            for &(u, v) in graph.edges() {
                let (a, b) = (exec.state(u), exec.state(v));
                if let (Some(ca), Some(cb)) = (sync.clock_of(a), sync.clock_of(b)) {
                    assert!(
                        safety.safe(ca, cb),
                        "clocks {ca} and {cb} on edge ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn async_mis_stabilizes_under_asynchronous_schedulers() {
        let graph = Graph::cycle(6);
        let alg = async_mis(graph.diameter());
        let checker = alg.checker();
        for seed in 0..3u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .uniform(alg.fresh_state());
            let mut sched = UniformRandomScheduler::new(0.7);
            let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 6000, 200);
            assert!(
                report.stabilization_round.is_some(),
                "seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn async_mis_recovers_from_corrupted_unison_coordinate() {
        // Corrupt the AU turns (but keep the inner states benign): the synchronizer
        // must still converge.
        let graph = Graph::star(6);
        let alg = async_mis(graph.diameter());
        let checker = alg.checker();
        let fresh = alg.fresh_state();
        let inner_palette = vec![fresh.current];
        let init =
            random_composite_configuration(&inner_palette, alg.unison(), graph.node_count(), 11);
        let mut exec = Execution::new(&alg, &graph, init, 11);
        let mut sched = CentralScheduler;
        let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 9000, 200);
        assert!(report.stabilization_round.is_some(), "{report:?}");
    }

    #[test]
    fn async_le_elects_one_leader_under_adversarial_scheduler() {
        let graph = Graph::complete(5);
        let alg = async_le(graph.diameter());
        let checker = alg.checker();
        let mut exec = ExecutionBuilder::new(&alg, &graph)
            .seed(2)
            .uniform(alg.fresh_state());
        let mut sched = AdversarialLaggardScheduler::starving(0, 4);
        let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 8000, 200);
        assert!(report.stabilization_round.is_some(), "{report:?}");
    }

    #[test]
    fn synchronous_schedule_reduces_to_the_inner_algorithm_pace() {
        // Under the synchronous scheduler with a benign start, every activation
        // advances the clock, so after r rounds the counter has advanced r times.
        let graph = Graph::complete(4);
        let sync = Synchronized::new(RoundCounter { m: 251 }, 1);
        let mut exec = ExecutionBuilder::new(&sync, &graph)
            .seed(0)
            .uniform(sync.lift(0u8));
        let mut sched = SynchronousScheduler;
        exec.run_rounds(&mut sched, 20);
        for s in exec.configuration() {
            assert_eq!(s.current, 20);
        }
    }

    /// A randomized inner algorithm with an enumerable space, so the
    /// composite runs dense + mask-compiled. The coin consumption makes any
    /// RNG-stream divergence between the masked and closure paths loud.
    #[derive(Debug, Clone, Copy)]
    struct NoisyInner;
    impl Algorithm for NoisyInner {
        type State = u8;
        type Output = u8;
        fn output(&self, s: &u8) -> Option<u8> {
            Some(*s)
        }
        fn transition(&self, s: &u8, signal: &Signal<u8>, rng: &mut dyn RngCore) -> u8 {
            use rand::Rng;
            if rng.gen_bool(0.5) {
                signal.max_state().copied().unwrap_or(*s)
            } else {
                rng.gen_range(0..4u8)
            }
        }
        fn dense_state_space(&self) -> Option<Vec<u8>> {
            Some((0..4).collect())
        }
    }

    /// The composite's mask-compiled path (turn masks + projection masks +
    /// inner transition on the projected dense signal) must replay the
    /// closure path bit for bit — configurations, coins, counters — from
    /// adversarial starts, including through AlgAU detours.
    #[test]
    fn masked_composite_matches_closure_path() {
        let graph = Graph::grid(3, 3);
        for seed in 0..3u64 {
            let sync = Synchronized::new(NoisyInner, 1);
            let init = random_composite_configuration(
                &(0..4u8).collect::<Vec<_>>(),
                sync.unison(),
                graph.node_count(),
                seed,
            );
            let mut masked = ExecutionBuilder::new(&sync, &graph)
                .seed(seed)
                .masked_transitions(true)
                .initial(init.clone());
            let mut closure = ExecutionBuilder::new(&sync, &graph)
                .seed(seed)
                .masked_transitions(false)
                .initial(init);
            assert!(masked.uses_dense_signals(), "product space fits dense");
            assert!(masked.uses_masked_transitions());
            assert!(!closure.uses_masked_transitions());
            let mut sched_a = UniformRandomScheduler::new(0.6);
            let mut sched_b = UniformRandomScheduler::new(0.6);
            for step in 0..400 {
                let a = masked.step_with(&mut sched_a);
                let b = closure.step_with(&mut sched_b);
                assert_eq!(a, b, "seed {seed} step {step}: outcome diverged");
                assert_eq!(
                    masked.configuration(),
                    closure.configuration(),
                    "seed {seed} step {step}: configuration diverged"
                );
            }
            assert_eq!(masked.counters(), closure.counters());
            assert!(masked.validate_incremental_sensing());
        }
    }

    /// The deterministic composite (RoundCounter inner) also compiles; the
    /// synchronous lockstep reduction must hold on the masked path.
    #[test]
    fn masked_composite_keeps_the_lockstep_reduction() {
        #[derive(Debug, Clone, Copy)]
        struct DenseCounter {
            m: u8,
        }
        impl Algorithm for DenseCounter {
            type State = u8;
            type Output = u8;
            fn output(&self, s: &u8) -> Option<u8> {
                Some(*s)
            }
            fn transition(&self, s: &u8, signal: &Signal<u8>, _rng: &mut dyn RngCore) -> u8 {
                let max = signal.max_by_key(|x| *x).unwrap_or(*s).max(*s);
                (max + 1) % self.m
            }
            fn dense_state_space(&self) -> Option<Vec<u8>> {
                Some((0..self.m).collect())
            }
            fn transition_is_deterministic(&self) -> bool {
                true
            }
        }
        let graph = Graph::complete(4);
        let sync = Synchronized::new(DenseCounter { m: 7 }, 1);
        let mut exec = ExecutionBuilder::new(&sync, &graph)
            .seed(0)
            .masked_transitions(true)
            .uniform(sync.lift(0u8));
        assert!(exec.uses_masked_transitions());
        let mut sched = SynchronousScheduler;
        exec.run_rounds(&mut sched, 20);
        for s in exec.configuration() {
            assert_eq!(s.current, 20 % 7);
        }
        assert!(exec.validate_incremental_sensing());
    }

    #[test]
    fn random_composite_configuration_is_deterministic_per_seed() {
        let unison = AlgAu::new(1);
        let a = random_composite_configuration(&[1u8, 2, 3], &unison, 5, 9);
        let b = random_composite_configuration(&[1u8, 2, 3], &unison, 5, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
