//! Client subcommands for a running `sa serve` daemon: `submit`, `status`,
//! `watch`, `cancel`, `gc`, `drain`, `shutdown`, `ping`.
//!
//! Each command opens one connection to the daemon's Unix socket, consumes
//! the `hello` handshake line (refusing daemons with a newer
//! `protocol_version` than this binary speaks), sends one request line and
//! prints the response. `watch` — and `submit --watch` — then echo the
//! NDJSON event stream to stdout until `job-finished`, so a shell script
//! can block on a job with `sa watch <job> --socket <path>`. The wire
//! format is specified in `docs/serve-protocol.md`.

use crate::serve::PROTOCOL_VERSION;
use sa_model::json::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Connection {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Connection {
    /// Connects and consumes the `hello` handshake line.
    fn open(socket: &PathBuf) -> Result<Self, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        let mut connection = Connection {
            reader: BufReader::new(stream),
            writer,
        };
        let hello = connection.read_line()?;
        let version = hello
            .get("protocol_version")
            .and_then(|v| v.as_f64())
            .map(|v| v as u64);
        match version {
            Some(version) if version <= PROTOCOL_VERSION => Ok(connection),
            Some(version) => Err(format!(
                "daemon speaks protocol v{version}, this client only v{PROTOCOL_VERSION} and older"
            )),
            None => Err("daemon did not send a protocol handshake".to_string()),
        }
    }

    fn send(&mut self, request: &JsonValue) -> Result<(), String> {
        self.writer
            .write_all(request.render().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))
    }

    fn read_line(&mut self) -> Result<JsonValue, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        JsonValue::parse(line.trim()).map_err(|e| format!("bad response line: {e}"))
    }

    /// Sends a request and reads its (single-line) response, failing on
    /// `"ok": false`.
    fn round_trip(&mut self, request: &JsonValue) -> Result<JsonValue, String> {
        self.send(request)?;
        let response = self.read_line()?;
        match response.get("ok") {
            Some(JsonValue::Bool(true)) => Ok(response),
            _ => Err(response
                .get("error")
                .and_then(|e| e.as_str())
                .unwrap_or("daemon reported an error")
                .to_string()),
        }
    }

    /// Echoes NDJSON events to stdout until `job-finished`; returns its
    /// final status, if the stream carried one.
    fn stream_events(&mut self) -> Result<Option<JsonValue>, String> {
        loop {
            let event = self.read_line()?;
            println!("{}", event.render());
            if event.get("event").and_then(|e| e.as_str()) == Some("job-finished") {
                return Ok(event.get("status").cloned());
            }
        }
    }
}

/// Parsed common client arguments: `--socket` plus positionals and the
/// flags a specific subcommand cares about.
struct ClientArgs {
    socket: PathBuf,
    positional: Vec<String>,
    priority: i64,
    client: String,
    watch: bool,
    all: bool,
    wait: Option<Duration>,
    keep: Option<u64>,
    max_age_secs: Option<u64>,
}

fn parse_client_args(args: &[String]) -> Result<ClientArgs, String> {
    let mut parsed = ClientArgs {
        socket: PathBuf::new(),
        positional: Vec::new(),
        priority: 0,
        client: whoami(),
        watch: false,
        all: false,
        wait: None,
        keep: None,
        max_age_secs: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--socket" => parsed.socket = PathBuf::from(flag_value("--socket")?),
            "--priority" => {
                parsed.priority = flag_value("--priority")?
                    .parse()
                    .map_err(|_| "--priority must be an integer".to_string())?;
            }
            "--client" => parsed.client = flag_value("--client")?,
            "--watch" => parsed.watch = true,
            "--all" => parsed.all = true,
            "--keep" => {
                parsed.keep = Some(
                    flag_value("--keep")?
                        .parse()
                        .map_err(|_| "--keep must be an integer".to_string())?,
                );
            }
            "--max-age-secs" => {
                parsed.max_age_secs = Some(
                    flag_value("--max-age-secs")?
                        .parse()
                        .map_err(|_| "--max-age-secs must be an integer (seconds)".to_string())?,
                );
            }
            "--wait" => {
                let secs: u64 = flag_value("--wait")?
                    .parse()
                    .map_err(|_| "--wait must be an integer (seconds)".to_string())?;
                parsed.wait = Some(Duration::from_secs(secs));
            }
            other if other.starts_with("--") => return Err(format!("unknown flag \"{other}\"")),
            _ => parsed.positional.push(arg.clone()),
        }
    }
    if parsed.socket.as_os_str().is_empty() {
        return Err("missing --socket <path>".to_string());
    }
    Ok(parsed)
}

fn whoami() -> String {
    std::env::var("USER").unwrap_or_else(|_| "anonymous".to_string())
}

/// `sa submit <spec.json> --socket S [--priority N] [--client NAME] [--watch]`.
pub fn submit(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    let [spec_path] = parsed.positional.as_slice() else {
        return Err("sa submit needs exactly one spec file".to_string());
    };
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path}: {e}"))?;
    let spec_doc =
        JsonValue::parse(&text).map_err(|e| format!("spec {spec_path} is not valid JSON: {e}"))?;
    let mut connection = Connection::open(&parsed.socket)?;
    let response = connection.round_trip(&JsonValue::object([
        ("op".to_string(), JsonValue::String("submit".to_string())),
        ("spec".to_string(), spec_doc),
        (
            "priority".to_string(),
            JsonValue::Number(parsed.priority as f64),
        ),
        ("client".to_string(), JsonValue::String(parsed.client)),
    ]))?;
    println!("{}", response.render());
    if !parsed.watch {
        return Ok(ExitCode::SUCCESS);
    }
    let job = response
        .get("job")
        .and_then(|j| j.as_str())
        .ok_or("daemon response carried no job id")?
        .to_string();
    watch_job(&mut connection, &job)
}

fn watch_job(connection: &mut Connection, job: &str) -> Result<ExitCode, String> {
    connection.round_trip(&JsonValue::object([
        ("op".to_string(), JsonValue::String("watch".to_string())),
        ("job".to_string(), JsonValue::String(job.to_string())),
    ]))?;
    let status = connection.stream_events()?;
    let clean = status
        .as_ref()
        .and_then(|s| s.get("clean"))
        .is_some_and(|c| matches!(c, JsonValue::Bool(true)));
    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `sa status [job] --socket S`.
pub fn status(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    let mut connection = Connection::open(&parsed.socket)?;
    let mut fields = vec![("op".to_string(), JsonValue::String("status".to_string()))];
    match parsed.positional.as_slice() {
        [] => {}
        [job] => fields.push(("job".to_string(), JsonValue::String(job.clone()))),
        _ => return Err("sa status takes at most one job id".to_string()),
    }
    let response = connection.round_trip(&JsonValue::object(fields))?;
    println!("{}", response.render_pretty());
    Ok(ExitCode::SUCCESS)
}

/// `sa watch <job> --socket S` — blocks until the job is terminal; exit
/// code reflects a clean finish. `sa watch --all --socket S` streams the
/// firehose instead: archived jobs replay as `job-finished` catch-up lines,
/// then every event of every job, until the daemon shuts down (Ctrl-C to
/// stop earlier).
pub fn watch(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    if parsed.all {
        if !parsed.positional.is_empty() {
            return Err("sa watch --all takes no job id".to_string());
        }
        let mut connection = Connection::open(&parsed.socket)?;
        connection.round_trip(&JsonValue::object([
            ("op".to_string(), JsonValue::String("watch".to_string())),
            ("all".to_string(), JsonValue::Bool(true)),
        ]))?;
        loop {
            match connection.read_line() {
                Ok(event) => println!("{}", event.render()),
                // The stream ends only when the daemon goes away.
                Err(_) => return Ok(ExitCode::SUCCESS),
            }
        }
    }
    let [job] = parsed.positional.as_slice() else {
        return Err("sa watch needs exactly one job id (or --all)".to_string());
    };
    let mut connection = Connection::open(&parsed.socket)?;
    watch_job(&mut connection, job)
}

/// `sa cancel <job> --socket S`.
pub fn cancel(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    let [job] = parsed.positional.as_slice() else {
        return Err("sa cancel needs exactly one job id".to_string());
    };
    let mut connection = Connection::open(&parsed.socket)?;
    connection.round_trip(&JsonValue::object([
        ("op".to_string(), JsonValue::String("cancel".to_string())),
        ("job".to_string(), JsonValue::String(job.clone())),
    ]))?;
    println!("cancelled {job}");
    Ok(ExitCode::SUCCESS)
}

/// `sa gc --socket S [--keep N] [--max-age-secs SECS]` — prunes archived
/// (terminal) job directories on the daemon; with no flags, the daemon's
/// own `--keep`/`--keep-age-secs` retention settings apply.
pub fn gc(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    if !parsed.positional.is_empty() {
        return Err("sa gc takes no positional arguments".to_string());
    }
    let mut fields = vec![("op".to_string(), JsonValue::String("gc".to_string()))];
    if let Some(keep) = parsed.keep {
        fields.push(("keep".to_string(), JsonValue::Number(keep as f64)));
    }
    if let Some(age) = parsed.max_age_secs {
        fields.push(("max_age_secs".to_string(), JsonValue::Number(age as f64)));
    }
    let mut connection = Connection::open(&parsed.socket)?;
    let response = connection.round_trip(&JsonValue::object(fields))?;
    println!("{}", response.render());
    Ok(ExitCode::SUCCESS)
}

/// A bare op with no arguments (`drain` / `shutdown`).
fn simple_op(args: &[String], op: &str) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    if !parsed.positional.is_empty() {
        return Err(format!("sa {op} takes no positional arguments"));
    }
    let mut connection = Connection::open(&parsed.socket)?;
    connection.round_trip(&JsonValue::object([(
        "op".to_string(),
        JsonValue::String(op.to_string()),
    )]))?;
    println!("{op}: ok");
    Ok(ExitCode::SUCCESS)
}

/// `sa drain --socket S` — blocks until every accepted job is terminal.
pub fn drain(args: &[String]) -> Result<ExitCode, String> {
    simple_op(args, "drain")
}

/// `sa shutdown --socket S` — stops the daemon; in-flight units checkpoint
/// and resume on the next `sa serve`.
pub fn shutdown(args: &[String]) -> Result<ExitCode, String> {
    simple_op(args, "shutdown")
}

/// `sa ping --socket S [--wait SECS]` — handshake check; `--wait` retries
/// until the daemon is up (CI uses this to await daemon start).
pub fn ping(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_client_args(args)?;
    if !parsed.positional.is_empty() {
        return Err("sa ping takes no positional arguments".to_string());
    }
    let deadline = parsed.wait.map(|wait| Instant::now() + wait);
    loop {
        let attempt = Connection::open(&parsed.socket).and_then(|mut connection| {
            connection.round_trip(&JsonValue::object([(
                "op".to_string(),
                JsonValue::String("ping".to_string()),
            )]))
        });
        match attempt {
            Ok(response) => {
                println!("{}", response.render());
                return Ok(ExitCode::SUCCESS);
            }
            Err(e) => match deadline {
                Some(deadline) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => return Err(e),
            },
        }
    }
}
