//! `sa verify <spec.json> [--out DIR]` — exhaustive model checking.
//!
//! Expands the spec's `verify` tasks into units ([`sa_bench::verify`]),
//! explores each instance's configuration space, and writes:
//!
//! ```text
//! VERIFY.json               # machine-readable results (byte-deterministic)
//! VERIFY.md                 # human-readable table
//! traces/<unit>.<prop>.json # counterexample traces (violated units only)
//! traces/<unit>.<prop>.txt  # ...human-readable transcript
//! ```
//!
//! under the output directory (default `verify/<spec-name>/`). The exit
//! code reflects the verdict: success only when every unit certifies both
//! closure and convergence. Progress goes to stderr; the state budget is
//! the spec's `max_states`, else `SA_VERIFY_MAX_STATES`, else the
//! built-in default (see `docs/verify.md`).

use crate::runner::load_spec;
use sa_bench::jobs::write_atomic;
use sa_bench::verify::{
    mode_label, render_verify_json, render_verify_markdown, trace_json, trace_transcript,
    verify_units,
};
use std::path::PathBuf;
use std::process::ExitCode;

pub fn verify(args: &[String]) -> Result<ExitCode, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = Some(PathBuf::from(
                    it.next().ok_or("--out needs a value")?.clone(),
                ));
            }
            other if other.starts_with("--") => return Err(format!("unknown flag \"{other}\"")),
            _ if spec_path.is_none() => spec_path = Some(PathBuf::from(arg)),
            other => return Err(format!("unexpected argument \"{other}\"")),
        }
    }
    let spec_path = spec_path.ok_or("usage: sa verify <spec.json> [--out DIR]")?;
    let spec = load_spec(&spec_path)?;
    let units = verify_units(&spec);
    if units.is_empty() {
        return Err(format!(
            "spec \"{}\" has no verify tasks (add a task with \"kind\": \"verify\")",
            spec.name
        ));
    }
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("verify").join(&spec.name));

    let mut reports = Vec::with_capacity(units.len());
    for unit in &units {
        let unit_id = unit.id();
        eprintln!(
            "sa verify: {unit_id}: exploring (budget {} states)",
            unit.effective_max_states()
        );
        let report = unit.run(&mut |p| {
            eprintln!(
                "sa verify: {unit_id}: {} states, {} expanded, {} edges",
                p.states, p.expanded, p.edges
            );
        })?;
        eprintln!(
            "sa verify: {unit_id}: {} states, {} edges, {} legitimate — closure {}, \
             convergence {} ({})",
            report.stats.states,
            report.stats.edges,
            report.stats.legitimate,
            if report.closure_certified {
                "certified"
            } else {
                "VIOLATED"
            },
            if report.convergence_certified {
                "certified"
            } else {
                "VIOLATED"
            },
            mode_label(report.convergence_mode),
        );
        reports.push(report);
    }

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let mut json = render_verify_json(&spec.name, &reports).render_pretty();
    json.push('\n');
    write_atomic(&out_dir.join("VERIFY.json"), &json)?;
    write_atomic(
        &out_dir.join("VERIFY.md"),
        &render_verify_markdown(&spec.name, &reports),
    )?;
    let traces_dir = out_dir.join("traces");
    for report in &reports {
        for (property, trace) in report.traces() {
            std::fs::create_dir_all(&traces_dir)
                .map_err(|e| format!("cannot create {}: {e}", traces_dir.display()))?;
            let stem = format!("{}.{property}", report.unit_id);
            let mut doc = trace_json(report, property, trace).render_pretty();
            doc.push('\n');
            write_atomic(&traces_dir.join(format!("{stem}.json")), &doc)?;
            write_atomic(
                &traces_dir.join(format!("{stem}.txt")),
                &trace_transcript(report, property, trace),
            )?;
        }
    }

    let violated = reports.iter().filter(|r| !r.certified()).count();
    if violated == 0 {
        println!(
            "sa verify: {} unit(s) certified — report in {}",
            reports.len(),
            out_dir.display()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "sa verify: {violated} of {} unit(s) VIOLATED — counterexample traces in {}",
            reports.len(),
            traces_dir.display()
        );
        Ok(ExitCode::FAILURE)
    }
}
