//! `sa bench-diff` — the CI micro-benchmark regression gate.
//!
//! Compares the medians of a freshly produced `BENCH_micro.json` against the
//! committed one and fails on a >`--max-regress` (default 30%) slowdown in
//! any **serial** benchmark. Sharded benchmarks get their own, looser hard
//! threshold (`--max-regress-sharded`, default 50%): the committed recording
//! comes from a 1-hardware-thread container where the sharded engine
//! measures pure coordination overhead (see ROADMAP), so they need headroom
//! for host variance — but a ≥50% slowdown is a real parallel-engine
//! regression and fails the gate. Benchmarks present on only one side are
//! reported but never fail the gate (benchmark sets may legitimately
//! evolve).

use sa_model::json::JsonValue;
use std::fs;
use std::process::ExitCode;

struct Record {
    key: String,
    median_ns: f64,
}

fn load_records(path: &str) -> Result<Vec<Record>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let items = value
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of benchmark records"))?;
    let mut records = Vec::with_capacity(items.len());
    for item in items {
        let group = item
            .get("group")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: record without \"group\""))?;
        let bench = item
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: record without \"bench\""))?;
        let median_ns = item
            .get("median_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path}: record without \"median_ns\""))?;
        records.push(Record {
            key: format!("{group}/{bench}"),
            median_ns,
        });
    }
    Ok(records)
}

/// Sharded-engine benchmarks: the committed recordings depend on the
/// recording host's core count, so they get the looser threshold.
fn is_sharded(key: &str) -> bool {
    key.contains("sharded")
}

/// Derived throughput records (`rounds-per-sec`) move *up* on an
/// improvement, which the increase-only gate would misread as a regression;
/// they ride along for humans and never gate.
fn is_informational(key: &str) -> bool {
    key.contains("rounds-per-sec")
}

pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut max_regress = 0.30f64;
    let mut max_regress_sharded = 0.50f64;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => {
                max_regress = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-regress needs a fraction, e.g. 0.30")?;
            }
            "--max-regress-sharded" => {
                max_regress_sharded = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-regress-sharded needs a fraction, e.g. 0.50")?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag \"{other}\"")),
            _ => positional.push(arg.clone()),
        }
    }
    let [committed_path, fresh_path] = positional.as_slice() else {
        return Err(
            "usage: sa bench-diff <committed.json> <fresh.json> [--max-regress FRAC] \
             [--max-regress-sharded FRAC]"
                .to_string(),
        );
    };
    let committed = load_records(committed_path)?;
    let fresh = load_records(fresh_path)?;

    let mut failures = 0usize;
    println!(
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "committed", "fresh", "delta"
    );
    for record in &committed {
        let Some(current) = fresh.iter().find(|f| f.key == record.key) else {
            println!(
                "{:<44} {:>12.1} {:>12} {:>8}  WARN (missing from fresh run)",
                record.key, record.median_ns, "-", "-"
            );
            continue;
        };
        let delta = current.median_ns / record.median_ns - 1.0;
        let threshold = if is_sharded(&record.key) {
            max_regress_sharded
        } else {
            max_regress
        };
        let verdict = if is_informational(&record.key) {
            "info (not gated)"
        } else if delta <= threshold {
            "ok"
        } else if is_sharded(&record.key) {
            failures += 1;
            "FAIL (sharded threshold)"
        } else {
            failures += 1;
            "FAIL"
        };
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>+7.1}%  {verdict}",
            record.key,
            record.median_ns,
            current.median_ns,
            delta * 100.0
        );
    }
    for current in &fresh {
        if !committed.iter().any(|c| c.key == current.key) {
            println!(
                "{:<44} {:>12} {:>12.1} {:>8}  note (new benchmark, no baseline)",
                current.key, "-", current.median_ns, "-"
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "bench-diff: {failures} benchmark(s) regressed beyond their threshold \
             (serial {:.0}%, sharded {:.0}%)",
            max_regress * 100.0,
            max_regress_sharded * 100.0
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "bench-diff: no benchmark regressed beyond its threshold \
         (serial {:.0}%, sharded {:.0}%)",
        max_regress * 100.0,
        max_regress_sharded * 100.0
    );
    Ok(ExitCode::SUCCESS)
}
