//! Batch sweep commands (`sa run` / `sa resume` / `sa check`) as thin
//! clients of the shared job-scheduler core ([`sa_bench::jobs`]).
//!
//! Directory layout under the output directory (default
//! `experiments/<spec-name>/`):
//!
//! ```text
//! EXPERIMENTS.json          # machine-readable results (byte-deterministic)
//! EXPERIMENTS.md            # human-readable table + artifacts
//! state/<unit>.done.json    # completed unit results (resume skips these)
//! state/<unit>.ckpt.json    # in-flight checkpoints (resume restores these)
//! state/<unit>.ckpt.bin     # ...binary form (spec checkpoint_format: "binary")
//! ```
//!
//! All persistence (atomic writes, checkpoint-format sniffing on resume,
//! the final report render) lives in the scheduler core; `sa serve` runs
//! the same core long-lived behind a socket. A batch run is exactly one
//! submitted job on a scheduler sized to [`thread_count`], waited to a
//! terminal state.

use sa_bench::jobs::{JobConfig, JobScheduler, JobState};
use sa_bench::sweep::SweepSpec;
use sa_runtime::parallel::thread_count;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints to stdout ignoring EPIPE (so `sa ... | head` exits quietly).
fn print_out(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

pub(crate) struct Options {
    pub(crate) spec_path: PathBuf,
    pub(crate) out_dir: Option<PathBuf>,
    pub(crate) checkpoint_every: u64,
    pub(crate) interrupt_after_steps: Option<u64>,
    pub(crate) interrupt_units: usize,
}

pub(crate) fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        spec_path: PathBuf::new(),
        out_dir: None,
        checkpoint_every: 1000,
        interrupt_after_steps: None,
        interrupt_units: usize::MAX,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => options.out_dir = Some(PathBuf::from(flag_value("--out")?)),
            "--checkpoint-every" => {
                options.checkpoint_every = flag_value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_string())?;
            }
            "--interrupt-after-steps" => {
                options.interrupt_after_steps = Some(
                    flag_value("--interrupt-after-steps")?
                        .parse()
                        .map_err(|_| "--interrupt-after-steps must be an integer".to_string())?,
                );
            }
            "--interrupt-units" => {
                options.interrupt_units = flag_value("--interrupt-units")?
                    .parse()
                    .map_err(|_| "--interrupt-units must be an integer".to_string())?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag \"{other}\"")),
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [spec] => options.spec_path = PathBuf::from(spec),
        [] => return Err("missing spec file".to_string()),
        _ => return Err("expected exactly one spec file".to_string()),
    }
    Ok(options)
}

pub(crate) fn load_spec(path: &Path) -> Result<SweepSpec, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read spec {}: {e}", path.display()))?;
    SweepSpec::parse(&text)
}

/// Collects every `.json` spec under `dir`, recursively, in sorted order
/// (deterministic across platforms).
fn collect_specs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_specs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    Ok(())
}

/// `sa check`: validate a spec (or, given a directory, every `.json` spec
/// under it, recursively — CI runs `sa check examples/specs` so a broken
/// committed spec fails fast) and print its unit expansion.
pub fn check(args: &[String]) -> Result<ExitCode, String> {
    let options = parse_options(args)?;
    let specs = if options.spec_path.is_dir() {
        let mut specs = Vec::new();
        collect_specs(&options.spec_path, &mut specs)?;
        if specs.is_empty() {
            return Err(format!(
                "no .json specs under {}",
                options.spec_path.display()
            ));
        }
        specs
    } else {
        vec![options.spec_path.clone()]
    };
    let mut failures = 0usize;
    for path in &specs {
        match load_spec(path) {
            Ok(spec) => {
                let units = spec.execution_units();
                let vunits = sa_bench::verify::verify_units(&spec);
                let mut out = format!(
                    "{}: spec \"{}\": {} task(s), {} execution unit(s), {} verify unit(s)\n",
                    path.display(),
                    spec.name,
                    spec.tasks.len(),
                    units.len(),
                    vunits.len()
                );
                for unit in &units {
                    out.push_str(&format!("  {}\n", unit.id()));
                }
                for unit in &vunits {
                    out.push_str(&format!("  {} (verify)\n", unit.id()));
                }
                print_out(&out);
            }
            Err(e) => {
                eprintln!("{}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("sa check: {failures} invalid spec(s)");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `sa run` / `sa resume`: submit the spec as one job on a scheduler sized
/// to the thread budget, wait for a terminal state, and report.
pub fn run(args: &[String], resume: bool) -> Result<ExitCode, String> {
    let options = parse_options(args)?;
    let spec = load_spec(&options.spec_path)?;
    let spec_name = spec.name.clone();
    let out_dir = options
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("experiments").join(&spec_name));

    // Paused start: the submission (including the resume scan) completes and
    // prints before any unit dispatches.
    let scheduler = JobScheduler::new_paused(thread_count());
    let mut config = JobConfig::new(spec, out_dir.clone());
    config.checkpoint_every = options.checkpoint_every;
    config.resume = resume;
    config.interrupt_after_steps = options.interrupt_after_steps;
    config.interrupt_units = options.interrupt_units;
    let receipt = scheduler.submit(config)?;
    println!(
        "{} \"{}\": {} unit(s), {} already complete",
        if resume { "resuming" } else { "running" },
        spec_name,
        receipt.units,
        receipt.resumed_done
    );
    scheduler.start();
    let status = scheduler.wait(&receipt.id).expect("submitted job exists");

    match status.state {
        JobState::Failed => Err(status
            .error
            .unwrap_or_else(|| "job failed with no recorded error".to_string())),
        JobState::Interrupted | JobState::Cancelled => {
            println!(
                "interrupted: {} unit(s) checkpointed, {} not started ({} complete); \
                 run `sa resume {} --out {}` to continue",
                status.units_interrupted,
                status.units_not_started,
                status.units_done,
                options.spec_path.display(),
                out_dir.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        JobState::Finished => {
            let md_path = out_dir.join("EXPERIMENTS.md");
            let markdown = fs::read_to_string(&md_path)
                .map_err(|e| format!("cannot read {}: {e}", md_path.display()))?;
            println!(
                "complete: {}/{} unit(s) clean; wrote {}/EXPERIMENTS.{{json,md}}",
                status.units_clean,
                status.units_done,
                out_dir.display()
            );
            print_out(&markdown);
            Ok(if status.units_clean == status.units_total {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        JobState::Queued | JobState::Running => unreachable!("wait() returns terminal states"),
    }
}
