//! Sweep orchestration: fan-out, checkpoint persistence and report output.
//!
//! Directory layout under the output directory (default
//! `experiments/<spec-name>/`):
//!
//! ```text
//! EXPERIMENTS.json          # machine-readable results (byte-deterministic)
//! EXPERIMENTS.md            # human-readable table + artifacts
//! state/<unit>.done.json    # completed unit results (resume skips these)
//! state/<unit>.ckpt.json    # in-flight checkpoints (resume restores these)
//! state/<unit>.ckpt.bin     # ...binary form (spec checkpoint_format: "binary")
//! ```
//!
//! All state files are written atomically (temp file + rename) so a kill
//! mid-write can never leave a truncated checkpoint behind. The in-flight
//! checkpoint encoding follows the spec's `checkpoint_format` field; resume
//! sniffs the file's leading bytes, so a spec whose format changed between
//! the kill and the resume still restores cleanly. Completed results and
//! the aggregate `EXPERIMENTS.{json,md}` are always JSON text — only the
//! (large, transient) in-flight state ever takes the binary path.

use sa_bench::sweep::{
    aggregate_rows, render_json, render_markdown, run_instant_tasks, run_unit, CheckpointFormat,
    CheckpointPolicy, SweepSpec, SweepUnit, UnitOutcome, UnitResult,
};
use sa_model::json::JsonValue;
use sa_runtime::parallel::{par_map_cancellable, CancelToken};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Prints to stdout ignoring EPIPE (so `sa ... | head` exits quietly).
fn print_out(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

struct Options {
    spec_path: PathBuf,
    out_dir: Option<PathBuf>,
    checkpoint_every: u64,
    interrupt_after_steps: Option<u64>,
    interrupt_units: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        spec_path: PathBuf::new(),
        out_dir: None,
        checkpoint_every: 1000,
        interrupt_after_steps: None,
        interrupt_units: usize::MAX,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => options.out_dir = Some(PathBuf::from(flag_value("--out")?)),
            "--checkpoint-every" => {
                options.checkpoint_every = flag_value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_string())?;
            }
            "--interrupt-after-steps" => {
                options.interrupt_after_steps = Some(
                    flag_value("--interrupt-after-steps")?
                        .parse()
                        .map_err(|_| "--interrupt-after-steps must be an integer".to_string())?,
                );
            }
            "--interrupt-units" => {
                options.interrupt_units = flag_value("--interrupt-units")?
                    .parse()
                    .map_err(|_| "--interrupt-units must be an integer".to_string())?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag \"{other}\"")),
            _ => positional.push(arg.clone()),
        }
    }
    match positional.as_slice() {
        [spec] => options.spec_path = PathBuf::from(spec),
        [] => return Err("missing spec file".to_string()),
        _ => return Err("expected exactly one spec file".to_string()),
    }
    Ok(options)
}

/// The other checkpoint encoding (resume fallback probing).
fn other_format(format: CheckpointFormat) -> CheckpointFormat {
    match format {
        CheckpointFormat::Json => CheckpointFormat::Binary,
        CheckpointFormat::Binary => CheckpointFormat::Json,
    }
}

fn load_spec(path: &Path) -> Result<SweepSpec, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read spec {}: {e}", path.display()))?;
    SweepSpec::parse(&text)
}

/// Atomic write: temp file in the same directory, then rename.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Atomic write of raw bytes (the binary checkpoint path).
fn write_atomic_bytes(path: &Path, contents: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("cannot rename {}: {e}", tmp.display()))
}

/// The in-flight checkpoint path for `unit_id` under `format`.
fn ckpt_path_for(state_dir: &Path, unit_id: &str, format: CheckpointFormat) -> PathBuf {
    let ext = match format {
        CheckpointFormat::Json => "ckpt.json",
        CheckpointFormat::Binary => "ckpt.bin",
    };
    state_dir.join(format!("{unit_id}.{ext}"))
}

/// Reads an in-flight checkpoint, sniffing the encoding from the leading
/// bytes (`Ok(None)` if the file does not exist).
fn read_checkpoint(path: &Path) -> Result<Option<JsonValue>, String> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(_) => return Ok(None),
    };
    let doc = if sa_model::binary::is_binary(&bytes) {
        sa_model::binary::decode(&bytes)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("corrupt checkpoint {}: not UTF-8", path.display()))?;
        JsonValue::parse(&text)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?
    };
    Ok(Some(doc))
}

/// Collects every `.json` spec under `dir`, recursively, in sorted order
/// (deterministic across platforms).
fn collect_specs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_specs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    Ok(())
}

/// `sa check`: validate a spec (or, given a directory, every `.json` spec
/// under it, recursively — CI runs `sa check examples/specs` so a broken
/// committed spec fails fast) and print its unit expansion.
pub fn check(args: &[String]) -> Result<ExitCode, String> {
    let options = parse_options(args)?;
    let specs = if options.spec_path.is_dir() {
        let mut specs = Vec::new();
        collect_specs(&options.spec_path, &mut specs)?;
        if specs.is_empty() {
            return Err(format!(
                "no .json specs under {}",
                options.spec_path.display()
            ));
        }
        specs
    } else {
        vec![options.spec_path.clone()]
    };
    let mut failures = 0usize;
    for path in &specs {
        match load_spec(path) {
            Ok(spec) => {
                let units = spec.execution_units();
                let mut out = format!(
                    "{}: spec \"{}\": {} task(s), {} execution unit(s)\n",
                    path.display(),
                    spec.name,
                    spec.tasks.len(),
                    units.len()
                );
                for unit in &units {
                    out.push_str(&format!("  {}\n", unit.id()));
                }
                print_out(&out);
            }
            Err(e) => {
                eprintln!("{}: INVALID: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("sa check: {failures} invalid spec(s)");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `sa run` / `sa resume`.
pub fn run(args: &[String], resume: bool) -> Result<ExitCode, String> {
    let options = parse_options(args)?;
    let spec = load_spec(&options.spec_path)?;
    let out_dir = options
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("experiments").join(&spec.name));
    let state_dir = out_dir.join("state");
    if !resume && state_dir.exists() {
        fs::remove_dir_all(&state_dir)
            .map_err(|e| format!("cannot clear {}: {e}", state_dir.display()))?;
    }
    fs::create_dir_all(&state_dir)
        .map_err(|e| format!("cannot create {}: {e}", state_dir.display()))?;

    let units = spec.execution_units();

    // Per-unit inputs: previously completed result (resume) or in-flight
    // checkpoint (resume), plus this invocation's interrupt allowance.
    struct UnitJob {
        unit: SweepUnit,
        done: Option<UnitResult>,
        checkpoint: Option<JsonValue>,
        interrupt_after_steps: Option<u64>,
    }
    let mut jobs = Vec::with_capacity(units.len());
    let mut interruptible_left = options.interrupt_units;
    for unit in units {
        let done_path = state_dir.join(format!("{}.done.json", unit.id()));
        let mut done = None;
        let mut checkpoint = None;
        if resume {
            if let Ok(text) = fs::read_to_string(&done_path) {
                done = JsonValue::parse(&text)
                    .ok()
                    .as_ref()
                    .and_then(UnitResult::from_json);
                if done.is_none() {
                    return Err(format!("corrupt unit result {}", done_path.display()));
                }
            } else {
                // Prefer the spec's format, but accept a leftover checkpoint
                // in the other encoding (format edited between kill/resume).
                for format in [spec.checkpoint_format, other_format(spec.checkpoint_format)] {
                    let path = ckpt_path_for(&state_dir, &unit.id(), format);
                    if let Some(doc) = read_checkpoint(&path)? {
                        checkpoint = Some(doc);
                        break;
                    }
                }
            }
        }
        let interrupt_after_steps = if done.is_none() && interruptible_left > 0 {
            options.interrupt_after_steps
        } else {
            None
        };
        if done.is_none() && interrupt_after_steps.is_some() {
            interruptible_left -= 1;
        }
        jobs.push(UnitJob {
            unit,
            done,
            checkpoint,
            interrupt_after_steps,
        });
    }

    let already_done = jobs.iter().filter(|j| j.done.is_some()).count();
    println!(
        "{} \"{}\": {} unit(s), {} already complete",
        if resume { "resuming" } else { "running" },
        spec.name,
        jobs.len(),
        already_done
    );

    // Fan the pending units out across threads; a unit-level error cancels
    // the remaining queue (checkpoints keep what already ran resumable).
    let cancel = CancelToken::new();
    let outcomes = par_map_cancellable(&jobs, &cancel, |job| {
        if let Some(done) = &job.done {
            return Ok(UnitOutcome::Complete(done.clone()));
        }
        let unit_id = job.unit.id();
        let format = spec.checkpoint_format;
        let ckpt_path = ckpt_path_for(&state_dir, &unit_id, format);
        let sink = move |doc: &JsonValue| {
            let written = match format {
                CheckpointFormat::Json => write_atomic(&ckpt_path, &doc.render_pretty()),
                CheckpointFormat::Binary => {
                    write_atomic_bytes(&ckpt_path, &sa_model::binary::encode(doc))
                }
            };
            if let Err(e) = written {
                eprintln!("warning: {e}");
            }
        };
        let policy = CheckpointPolicy {
            every_steps: options.checkpoint_every,
            sink: Some(&sink),
            resume_from: job.checkpoint.as_ref(),
            interrupt_after_steps: job.interrupt_after_steps,
        };
        let outcome = run_unit(&job.unit, &policy);
        if outcome.is_err() {
            cancel.cancel();
        }
        outcome
    });

    let mut completed: Vec<(SweepUnit, UnitResult)> = Vec::new();
    let mut interrupted = 0usize;
    let mut skipped = 0usize;
    let mut first_error: Option<String> = None;
    for (job, outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            None => skipped += 1,
            Some(Err(e)) => {
                // Keep draining: units that *did* complete in parallel must
                // still persist their results so a later resume skips them.
                if first_error.is_none() {
                    first_error = Some(format!("unit {}: {e}", job.unit.id()));
                }
            }
            Some(Ok(UnitOutcome::Interrupted(_))) => {
                // checkpoint already persisted through the sink
                interrupted += 1;
            }
            Some(Ok(UnitOutcome::Complete(result))) => {
                if job.done.is_none() {
                    let done_path = state_dir.join(format!("{}.done.json", job.unit.id()));
                    write_atomic(&done_path, &result.to_json().render_pretty())?;
                    for format in [CheckpointFormat::Json, CheckpointFormat::Binary] {
                        let _ = fs::remove_file(ckpt_path_for(&state_dir, &job.unit.id(), format));
                    }
                }
                completed.push((job.unit.clone(), result));
            }
        }
    }
    if let Some(error) = first_error {
        return Err(error);
    }

    if interrupted + skipped > 0 {
        println!(
            "interrupted: {} unit(s) checkpointed, {} not started ({} complete); \
             run `sa resume {} --out {}` to continue",
            interrupted,
            skipped,
            completed.len(),
            options.spec_path.display(),
            out_dir.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    // Every unit finished: aggregate and persist the reports.
    let (mut rows, artifacts) = run_instant_tasks(&spec);
    rows.extend(aggregate_rows(&completed));
    let json = render_json(&spec, &rows, &completed).render_pretty();
    let markdown = render_markdown(&spec, &rows, &artifacts, &completed);
    write_atomic(&out_dir.join("EXPERIMENTS.json"), &json)?;
    write_atomic(&out_dir.join("EXPERIMENTS.md"), &markdown)?;
    let clean = completed.iter().filter(|(_, r)| r.is_clean()).count();
    println!(
        "complete: {}/{} unit(s) clean; wrote {}/EXPERIMENTS.{{json,md}}",
        clean,
        completed.len(),
        out_dir.display()
    );
    print_out(&markdown);
    Ok(if clean == completed.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
