//! `sa serve` — the simulation-as-a-service daemon.
//!
//! A long-lived process wrapping one [`JobScheduler`] behind a Unix domain
//! socket. Clients speak newline-delimited JSON (one request object per
//! line, one response object per line; `watch` switches the connection to
//! an NDJSON event stream). The full wire protocol — every request,
//! response and event with field-by-field schemas — is documented in
//! `docs/serve-protocol.md`; `protocol_version` is 1.
//!
//! State layout under `--state-dir` (default `serve-state/`):
//!
//! ```text
//! jobs/<id>/job.json     # submitted config (inline spec) — written first
//! jobs/<id>/out/         # the job's output directory (state/ + reports)
//! jobs/<id>/result.json  # final status, written only on terminal states
//!                        # that must NOT resume (finished/failed/cancelled)
//! quarantine/<id>/       # job dirs whose records arrived torn (see below)
//! ```
//!
//! Crash recovery is a restart-time rescan: every `job.json` without a
//! `result.json` is resubmitted with its original id and priority and
//! `resume = true`, so in-flight units continue from their checkpoints and
//! a SIGKILLed-and-restarted daemon produces byte-identical
//! `EXPERIMENTS.json`/`.md` (pinned by `tests/serve.rs`, the fault-matrix
//! sweep in `tests/robustness.rs`, and the CI `serve-smoke` /
//! `robustness-smoke` jobs).
//!
//! # The fault-tolerance contract
//!
//! The daemon holds itself to the paper's standard — recover from arbitrary
//! transient faults instead of trusting them not to happen:
//!
//! * **Durable acks.** Every daemon-owned file is written temp-file +
//!   fsync + atomic-rename + dir-fsync (see [`write_atomic`]); `job.json`
//!   reaches disk *before* the submit ack, so an acknowledged job is never
//!   silently lost, and a crash before the ack loses only the
//!   un-acknowledged submit.
//! * **Tolerant recovery.** The rescan never refuses to start over bad
//!   bytes: a torn `job.json` quarantines the job directory (logged, kept
//!   for post-mortems), a torn `result.json` or checkpoint quarantines just
//!   that file and recomputes — deterministically byte-identical, per the
//!   counter-based RNG discipline.
//! * **Bounded intake.** Request lines are capped (`--max-frame-bytes`,
//!   structured `too-large` error), the queue is capped (`overloaded` +
//!   `retry_after_ms`), per-client quotas and fair-share dispatch keep one
//!   client from starving the rest, and slow clients are disconnected by
//!   read/write deadlines rather than pinning handler threads.
//! * **No stuck units.** `--unit-timeout-secs` arms a watchdog that cancels
//!   a runaway unit at its next checkpoint boundary and fails the job with
//!   an explanatory error.

use sa_bench::jobs::{
    quarantine_file, write_atomic, JobConfig, JobEvent, JobId, JobScheduler, JobState, JobStatus,
    ResultSink, SchedError, SchedulerLimits,
};
use sa_model::json::JsonValue;
use sa_runtime::parallel::{thread_count, CancelToken};
use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, SystemTime};

/// The protocol generation this daemon speaks (sent in the `hello` line;
/// see `docs/serve-protocol.md` for the compatibility rules).
pub const PROTOCOL_VERSION: u64 = 1;

struct ServeOptions {
    socket: PathBuf,
    state_dir: PathBuf,
    workers: usize,
    checkpoint_every: u64,
    /// Archive retention: keep at most this many terminal job dirs
    /// (0 = unlimited).
    keep: usize,
    /// Archive retention: prune terminal job dirs older than this
    /// (0 = no age limit).
    keep_age_secs: u64,
    /// Request-line length cap; longer frames get a `too-large` error.
    max_frame_bytes: usize,
    /// Disconnect a connection idle (or mid-line) this long (0 = never).
    idle_timeout_secs: u64,
    /// Disconnect a connection that blocks writes this long (0 = never).
    write_timeout_secs: u64,
    /// Wall-clock budget per unit; the watchdog fails runaways (0 = off).
    unit_timeout_secs: u64,
    /// Queue-depth bound for admission control (0 = unlimited).
    max_queued_units: usize,
    /// Per-client outstanding-unit quota (0 = unlimited).
    client_quota: usize,
    /// Per-client running-unit cap (0 = unlimited).
    client_workers: usize,
}

/// `SA_SERVE_*` fallback for a numeric flag (flags win; invalid values are
/// ignored).
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        socket: PathBuf::new(),
        state_dir: PathBuf::from("serve-state"),
        workers: thread_count(),
        checkpoint_every: 1000,
        keep: env_u64("SA_SERVE_KEEP", 0) as usize,
        keep_age_secs: env_u64("SA_SERVE_KEEP_AGE_SECS", 0),
        max_frame_bytes: env_u64("SA_SERVE_MAX_FRAME_BYTES", 1 << 20) as usize,
        idle_timeout_secs: env_u64("SA_SERVE_IDLE_TIMEOUT_SECS", 300),
        write_timeout_secs: env_u64("SA_SERVE_WRITE_TIMEOUT_SECS", 30),
        unit_timeout_secs: env_u64("SA_SERVE_UNIT_TIMEOUT_SECS", 0),
        max_queued_units: env_u64("SA_SERVE_MAX_QUEUED_UNITS", 10_000) as usize,
        client_quota: env_u64("SA_SERVE_CLIENT_QUOTA", 0) as usize,
        client_workers: env_u64("SA_SERVE_CLIENT_WORKERS", 0) as usize,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let mut numeric = |name: &str| -> Result<u64, String> {
            flag_value(name)?
                .parse()
                .map_err(|_| format!("{name} must be an integer"))
        };
        match arg.as_str() {
            "--socket" => options.socket = PathBuf::from(flag_value("--socket")?),
            "--state-dir" => options.state_dir = PathBuf::from(flag_value("--state-dir")?),
            "--workers" => options.workers = numeric("--workers")? as usize,
            "--checkpoint-every" => options.checkpoint_every = numeric("--checkpoint-every")?,
            "--keep" => options.keep = numeric("--keep")? as usize,
            "--keep-age-secs" => options.keep_age_secs = numeric("--keep-age-secs")?,
            "--max-frame-bytes" => options.max_frame_bytes = numeric("--max-frame-bytes")? as usize,
            "--idle-timeout-secs" => options.idle_timeout_secs = numeric("--idle-timeout-secs")?,
            "--write-timeout-secs" => options.write_timeout_secs = numeric("--write-timeout-secs")?,
            "--unit-timeout-secs" => options.unit_timeout_secs = numeric("--unit-timeout-secs")?,
            "--max-queued-units" => {
                options.max_queued_units = numeric("--max-queued-units")? as usize
            }
            "--client-quota" => options.client_quota = numeric("--client-quota")? as usize,
            "--client-workers" => options.client_workers = numeric("--client-workers")? as usize,
            other => return Err(format!("unknown argument \"{other}\"")),
        }
    }
    if options.socket.as_os_str().is_empty() {
        return Err("sa serve needs --socket <path>".to_string());
    }
    Ok(options)
}

/// Everything the connection handlers share.
struct Daemon {
    scheduler: JobScheduler,
    state_dir: PathBuf,
    checkpoint_every: u64,
    keep: usize,
    keep_age_secs: u64,
    /// Terminal statuses of jobs from previous daemon lives (restored from
    /// `result.json`); `status`/`watch` fall back to these.
    archive: Mutex<BTreeMap<JobId, JobStatus>>,
    /// The daemon's own id counter (ids must stay unique across restarts,
    /// which the scheduler alone cannot know about).
    next_id: Mutex<u64>,
    /// Fires on the `shutdown` op; the accept loop exits.
    stop: CancelToken,
}

/// Archives terminal statuses to `jobs/<id>/result.json` — except
/// interrupted ones, which must stay resumable on the next daemon start.
struct ArchiveSink {
    jobs_dir: PathBuf,
}

impl ResultSink for ArchiveSink {
    fn event(&self, event: &JobEvent) {
        let JobEvent::JobFinished { job, status } = event else {
            return;
        };
        if status.state == JobState::Interrupted {
            return;
        }
        let path = self.jobs_dir.join(job).join("result.json");
        if let Err(e) = write_atomic(&path, &status.to_json().render_pretty()) {
            eprintln!("sa serve: warning: {e}");
        }
    }
}

fn jobs_dir(state_dir: &Path) -> PathBuf {
    state_dir.join("jobs")
}

/// Serializes a job's submission so a restarted daemon can resubmit it.
fn job_json(id: &str, spec_text: &JsonValue, priority: i64, client: &str) -> JsonValue {
    JsonValue::object([
        ("job".to_string(), JsonValue::String(id.to_string())),
        ("spec".to_string(), spec_text.clone()),
        ("priority".to_string(), JsonValue::Number(priority as f64)),
        ("client".to_string(), JsonValue::String(client.to_string())),
    ])
}

/// Moves a job directory whose records are unusable into
/// `<state-dir>/quarantine/` (kept for post-mortems), logging the reason.
/// Recovery never panics and never refuses to start over one bad job.
fn quarantine_dir(state_dir: &Path, dir: &Path, reason: &str) {
    eprintln!(
        "sa serve: warning: quarantining {}: {reason}",
        dir.display()
    );
    let root = state_dir.join("quarantine");
    if fs::create_dir_all(&root).is_err() {
        return;
    }
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "job".to_string());
    let mut target = root.join(&name);
    let mut suffix = 1;
    while target.exists() {
        target = root.join(format!("{name}-{suffix}"));
        suffix += 1;
    }
    if let Err(e) = fs::rename(dir, &target) {
        eprintln!(
            "sa serve: warning: cannot quarantine {}: {e}",
            dir.display()
        );
    }
}

/// Restart-time rescan: archive finished jobs, resubmit unfinished ones
/// (resume mode, original id/priority/client). Torn or missing records
/// quarantine the affected file or directory and the scan continues — a
/// corrupt job never takes the daemon down with it. Returns the next fresh
/// id counter value.
fn recover_jobs(
    scheduler: &JobScheduler,
    state_dir: &Path,
    archive: &Mutex<BTreeMap<JobId, JobStatus>>,
    checkpoint_every: u64,
) -> u64 {
    let jobs_root = jobs_dir(state_dir);
    let mut next_id = 1u64;
    let mut entries: Vec<PathBuf> = match fs::read_dir(&jobs_root) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return next_id,
    };
    entries.sort();
    for dir in entries {
        let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
            // Quarantined ids count too: never reuse an id a client saw.
            next_id = next_id.max(n + 1);
        }
        if !dir.is_dir() {
            continue;
        }
        let job_path = dir.join("job.json");
        let Ok(text) = fs::read_to_string(&job_path) else {
            quarantine_dir(state_dir, &dir, "missing or unreadable job.json");
            continue;
        };
        let doc = match JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                quarantine_dir(state_dir, &dir, &format!("corrupt job.json: {e}"));
                continue;
            }
        };
        let result_path = dir.join("result.json");
        if result_path.exists() {
            let status = fs::read_to_string(&result_path)
                .ok()
                .and_then(|t| JsonValue::parse(&t).ok())
                .as_ref()
                .and_then(JobStatus::from_json);
            match status {
                Some(status) => {
                    archive.lock().unwrap().insert(id, status);
                    continue;
                }
                None => {
                    // The job itself is fine; only the terminal record is
                    // torn. Quarantine it and recompute via resume below.
                    quarantine_file(&result_path, "corrupt result record");
                }
            }
        }
        let Some(spec_doc) = doc.get("spec") else {
            quarantine_dir(state_dir, &dir, "job.json has no \"spec\"");
            continue;
        };
        let spec = match sa_bench::sweep::SweepSpec::from_json(spec_doc) {
            Ok(spec) => spec,
            Err(e) => {
                quarantine_dir(state_dir, &dir, &format!("unusable spec: {e}"));
                continue;
            }
        };
        let mut config = JobConfig::new(spec, dir.join("out"));
        config.id = Some(id.clone());
        config.priority = doc.get("priority").and_then(|p| p.as_f64()).unwrap_or(0.0) as i64;
        config.client = doc
            .get("client")
            .and_then(|c| c.as_str())
            .unwrap_or("recovered")
            .to_string();
        config.checkpoint_every = checkpoint_every;
        config.resume = true;
        match scheduler.submit(config) {
            Ok(receipt) => eprintln!(
                "sa serve: recovered job {} ({} unit(s), {} already complete)",
                receipt.id, receipt.units, receipt.resumed_done
            ),
            Err(e) => quarantine_dir(state_dir, &dir, &format!("cannot resubmit: {e}")),
        }
    }
    next_id
}

/// Prunes archived (terminal, non-resumable) job directories: keeps the
/// newest `keep` by id (0 = no count bound) and drops any whose
/// `result.json` is older than `max_age_secs` (0 = no age bound). Jobs
/// without a `result.json` — queued, running, interrupted — are never
/// touched. Returns the removed ids and the count of terminal directories
/// retained.
fn prune_archive(daemon: &Daemon, keep: usize, max_age_secs: u64) -> (Vec<JobId>, usize) {
    let jobs_root = jobs_dir(&daemon.state_dir);
    let mut candidates: Vec<(u64, JobId, PathBuf, SystemTime)> = Vec::new();
    if let Ok(entries) = fs::read_dir(&jobs_root) {
        for entry in entries.flatten() {
            let dir = entry.path();
            let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            let Ok(meta) = fs::metadata(dir.join("result.json")) else {
                continue; // not terminal: never pruned
            };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            let num = id
                .strip_prefix('j')
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX);
            candidates.push((num, id, dir, mtime));
        }
    }
    candidates.sort();
    let total = candidates.len();
    let excess = if keep > 0 {
        total.saturating_sub(keep)
    } else {
        0
    };
    let cutoff = (max_age_secs > 0).then(|| SystemTime::now() - Duration::from_secs(max_age_secs));
    let mut removed = Vec::new();
    for (index, (_, id, dir, mtime)) in candidates.into_iter().enumerate() {
        let too_many = index < excess;
        let too_old = cutoff.is_some_and(|cut| mtime < cut);
        if !(too_many || too_old) {
            continue;
        }
        match fs::remove_dir_all(&dir) {
            Ok(()) => {
                daemon.archive.lock().unwrap().remove(&id);
                removed.push(id);
            }
            Err(e) => eprintln!("sa serve: warning: cannot prune {}: {e}", dir.display()),
        }
    }
    let kept = total - removed.len();
    (removed, kept)
}

fn ok_response(extra: Vec<(String, JsonValue)>) -> JsonValue {
    let mut fields = vec![("ok".to_string(), JsonValue::Bool(true))];
    fields.extend(extra);
    JsonValue::object(fields)
}

/// An error response with a stable machine-readable `code` (see
/// `docs/serve-protocol.md` for the registry) and a human-readable message.
fn err_response(code: &str, message: &str) -> JsonValue {
    JsonValue::object([
        ("ok".to_string(), JsonValue::Bool(false)),
        ("code".to_string(), JsonValue::String(code.to_string())),
        ("error".to_string(), JsonValue::String(message.to_string())),
    ])
}

/// Maps a scheduler rejection onto the wire, carrying `retry_after_ms` when
/// the scheduler suggests a backoff (load shedding).
fn sched_err_response(e: &SchedError) -> JsonValue {
    let mut fields = vec![
        ("ok".to_string(), JsonValue::Bool(false)),
        ("code".to_string(), JsonValue::String(e.code.to_string())),
        ("error".to_string(), JsonValue::String(e.message.clone())),
    ];
    if let Some(ms) = e.retry_after_ms {
        fields.push(("retry_after_ms".to_string(), JsonValue::Number(ms as f64)));
    }
    JsonValue::object(fields)
}

fn send_line(stream: &mut UnixStream, value: &JsonValue) -> std::io::Result<()> {
    stream.write_all(value.render().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// One framed request line, read with a hard length bound.
enum Frame {
    Line(String),
    /// The line exceeded the bound; the remainder was discarded up to the
    /// next newline so the connection stays usable.
    TooLarge,
    Eof,
}

/// Reads one newline-terminated frame without ever buffering more than
/// `max` bytes of it — the bounded replacement for `read_line`, which would
/// happily buffer an arbitrarily long line.
fn read_frame(reader: &mut BufReader<UnixStream>, max: usize) -> std::io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(if buf.len() > max {
                Frame::TooLarge
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        buf.extend_from_slice(available);
        let n = available.len();
        reader.consume(n);
        if buf.len() > max {
            discard_line(reader)?;
            return Ok(Frame::TooLarge);
        }
    }
}

/// Consumes input up to and including the next newline (or EOF) without
/// retaining it.
fn discard_line(reader: &mut BufReader<UnixStream>) -> std::io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return Ok(());
        }
        let n = available.len();
        reader.consume(n);
    }
}

/// Handles the `submit` op: resolve the spec (inline or by path), persist
/// the job record durably, then hand the job to the scheduler. A scheduler
/// rejection removes the just-written record — a restart must never
/// resurrect a job whose submit the client saw fail.
fn handle_submit(daemon: &Arc<Daemon>, request: &JsonValue) -> JsonValue {
    let spec_doc = match (request.get("spec"), request.get("spec_path")) {
        (Some(doc), _) => doc.clone(),
        (None, Some(path)) => {
            // The document (not the path) goes into the job record, so the
            // job survives the file being edited or deleted later.
            let Some(path) = path.as_str() else {
                return err_response("bad-request", "\"spec_path\" must be a string");
            };
            let text = match fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    return err_response("bad-request", &format!("cannot read spec {path}: {e}"))
                }
            };
            match JsonValue::parse(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    return err_response(
                        "bad-request",
                        &format!("spec {path} is not valid JSON: {e}"),
                    )
                }
            }
        }
        (None, None) => {
            return err_response(
                "bad-request",
                "submit needs \"spec\" (inline) or \"spec_path\"",
            )
        }
    };
    let spec = match sa_bench::sweep::SweepSpec::from_json(&spec_doc) {
        Ok(spec) => spec,
        Err(e) => return err_response("bad-request", &e),
    };
    let priority = request
        .get("priority")
        .and_then(|p| p.as_f64())
        .unwrap_or(0.0) as i64;
    let client = request
        .get("client")
        .and_then(|c| c.as_str())
        .unwrap_or("anonymous")
        .to_string();

    let id = {
        let mut next = daemon.next_id.lock().unwrap();
        let id = format!("j{}", *next);
        *next += 1;
        id
    };
    let job_dir = jobs_dir(&daemon.state_dir).join(&id);
    if let Err(e) = fs::create_dir_all(&job_dir) {
        return err_response("io", &format!("cannot create {}: {e}", job_dir.display()));
    }
    // The record goes to disk (durably) before the scheduler sees the job:
    // a crash after this point recovers the job, a crash before it loses
    // only the un-acknowledged submit.
    if let Err(e) = write_atomic(
        &job_dir.join("job.json"),
        &job_json(&id, &spec_doc, priority, &client).render_pretty(),
    ) {
        let _ = fs::remove_dir_all(&job_dir);
        return err_response("io", &e);
    }

    let mut config = JobConfig::new(spec, job_dir.join("out"));
    config.id = Some(id);
    config.priority = priority;
    config.client = client;
    config.checkpoint_every = daemon.checkpoint_every;
    match daemon.scheduler.submit(config) {
        Ok(receipt) => {
            if daemon.keep > 0 || daemon.keep_age_secs > 0 {
                prune_archive(daemon, daemon.keep, daemon.keep_age_secs);
            }
            ok_response(vec![
                ("job".to_string(), JsonValue::String(receipt.id)),
                ("units".to_string(), JsonValue::Number(receipt.units as f64)),
                (
                    "resumed_done".to_string(),
                    JsonValue::Number(receipt.resumed_done as f64),
                ),
            ])
        }
        Err(e) => {
            let _ = fs::remove_dir_all(&job_dir);
            sched_err_response(&e)
        }
    }
}

/// Handles `watch`: acknowledge, then stream the job's events as NDJSON
/// until `job-finished`, after which the connection returns to request
/// mode.
fn handle_watch(daemon: &Arc<Daemon>, stream: &mut UnixStream, job: &str) -> std::io::Result<bool> {
    let Some(rx) = daemon.scheduler.watch(job) else {
        // Jobs archived by a previous daemon life still answer a watch with
        // their (terminal) outcome.
        let archived = daemon.archive.lock().unwrap().get(job).cloned();
        return match archived {
            Some(status) => {
                send_line(stream, &ok_response(vec![]))?;
                let event = JobEvent::JobFinished {
                    job: job.to_string(),
                    status,
                };
                send_line(stream, &event.to_json())?;
                Ok(true)
            }
            None => {
                send_line(
                    stream,
                    &err_response("unknown-job", &format!("unknown job \"{job}\"")),
                )?;
                Ok(true)
            }
        };
    };
    send_line(stream, &ok_response(vec![]))?;
    while let Ok(event) = rx.recv() {
        let last = matches!(event, JobEvent::JobFinished { .. });
        send_line(stream, &event.to_json())?;
        if last {
            break;
        }
    }
    Ok(true)
}

/// Handles `watch` with `"all": true` — the firehose: archived jobs replay
/// as synthetic `job-finished` catch-up lines (id order), then every event
/// of every live job streams in the scheduler's total order. The stream
/// runs until the client disconnects or the daemon shuts down; the
/// connection never returns to request mode.
fn handle_watch_all(daemon: &Arc<Daemon>, stream: &mut UnixStream) -> std::io::Result<bool> {
    send_line(stream, &ok_response(vec![]))?;
    // Subscribe before the archived catch-up so nothing falls in a gap;
    // live terminal jobs get their own synthetic catch-up from watch_all.
    let rx = daemon.scheduler.watch_all();
    let archived: Vec<JobEvent> = daemon
        .archive
        .lock()
        .unwrap()
        .iter()
        .map(|(id, status)| JobEvent::JobFinished {
            job: id.clone(),
            status: status.clone(),
        })
        .collect();
    for event in archived {
        send_line(stream, &event.to_json())?;
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(event) => send_line(stream, &event.to_json())?,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if daemon.stop.is_cancelled() {
                    return Ok(false);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(false),
        }
    }
}

/// Dispatches one request line; returns `false` when the connection should
/// close (daemon shutting down).
fn handle_request(
    daemon: &Arc<Daemon>,
    stream: &mut UnixStream,
    line: &str,
) -> std::io::Result<bool> {
    let request = match JsonValue::parse(line) {
        Ok(request) => request,
        Err(e) => {
            send_line(
                stream,
                &err_response("bad-request", &format!("bad request: {e}")),
            )?;
            return Ok(true);
        }
    };
    let op = request.get("op").and_then(|o| o.as_str()).unwrap_or("");
    let job_field = || -> Result<&str, String> {
        request
            .get("job")
            .and_then(|j| j.as_str())
            .ok_or_else(|| format!("{op} needs a \"job\" field"))
    };
    match op {
        "ping" => send_line(
            stream,
            &ok_response(vec![(
                "protocol_version".to_string(),
                JsonValue::Number(PROTOCOL_VERSION as f64),
            )]),
        )?,
        "submit" => {
            let response = handle_submit(daemon, &request);
            send_line(stream, &response)?;
        }
        "status" => {
            let response = match request.get("job").and_then(|j| j.as_str()) {
                Some(job) => {
                    let status = daemon
                        .scheduler
                        .status(job)
                        .or_else(|| daemon.archive.lock().unwrap().get(job).cloned());
                    match status {
                        Some(status) => ok_response(vec![("status".to_string(), status.to_json())]),
                        None => err_response("unknown-job", &format!("unknown job \"{job}\"")),
                    }
                }
                None => {
                    let mut all: BTreeMap<JobId, JobStatus> =
                        daemon.archive.lock().unwrap().clone();
                    for status in daemon.scheduler.statuses() {
                        all.insert(status.id.clone(), status);
                    }
                    ok_response(vec![(
                        "jobs".to_string(),
                        JsonValue::Array(all.values().map(JobStatus::to_json).collect()),
                    )])
                }
            };
            send_line(stream, &response)?;
        }
        "cancel" => {
            let response = match job_field() {
                Ok(job) => {
                    if daemon.scheduler.cancel(job)
                        || daemon.archive.lock().unwrap().contains_key(job)
                    {
                        ok_response(vec![])
                    } else {
                        err_response("unknown-job", &format!("unknown job \"{job}\""))
                    }
                }
                Err(e) => err_response("bad-request", &e),
            };
            send_line(stream, &response)?;
        }
        "watch" => {
            if matches!(request.get("all"), Some(JsonValue::Bool(true))) {
                return handle_watch_all(daemon, stream);
            }
            let response = match job_field() {
                Ok(job) => return handle_watch(daemon, stream, job),
                Err(e) => err_response("bad-request", &e),
            };
            send_line(stream, &response)?;
        }
        "gc" => {
            let keep = request
                .get("keep")
                .and_then(|k| k.as_f64())
                .map(|k| k as usize)
                .unwrap_or(daemon.keep);
            let max_age = request
                .get("max_age_secs")
                .and_then(|k| k.as_f64())
                .map(|k| k as u64)
                .unwrap_or(daemon.keep_age_secs);
            let (removed, kept) = prune_archive(daemon, keep, max_age);
            send_line(
                stream,
                &ok_response(vec![
                    (
                        "removed".to_string(),
                        JsonValue::Array(removed.into_iter().map(JsonValue::String).collect()),
                    ),
                    ("kept".to_string(), JsonValue::Number(kept as f64)),
                ]),
            )?;
        }
        "drain" => {
            // Blocks this connection until every accepted job is terminal;
            // other connections keep being served meanwhile.
            daemon.scheduler.drain();
            send_line(stream, &ok_response(vec![]))?;
        }
        "shutdown" => {
            send_line(stream, &ok_response(vec![]))?;
            daemon.stop.cancel();
            return Ok(false);
        }
        other => send_line(
            stream,
            &err_response("unknown-op", &format!("unknown op \"{other}\"")),
        )?,
    }
    Ok(true)
}

fn handle_connection(daemon: Arc<Daemon>, stream: UnixStream, options: &ConnectionOptions) {
    // Deadlines: a client idle (or trickling a line) past the read timeout,
    // or blocking our writes past the write timeout, is disconnected — slow
    // clients must not pin handler threads or buffers.
    if options.idle_timeout_secs > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(options.idle_timeout_secs)));
    }
    if options.write_timeout_secs > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(options.write_timeout_secs)));
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let hello = JsonValue::object([
        ("event".to_string(), JsonValue::String("hello".to_string())),
        (
            "protocol_version".to_string(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ]);
    if send_line(&mut writer, &hello).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, options.max_frame_bytes) {
            Ok(Frame::Eof) => break,
            Ok(Frame::TooLarge) => {
                let response = err_response(
                    "too-large",
                    &format!(
                        "request line exceeds the {}-byte frame limit",
                        options.max_frame_bytes
                    ),
                );
                if send_line(&mut writer, &response).is_err() {
                    break;
                }
            }
            Ok(Frame::Line(line)) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match handle_request(&daemon, &mut writer, line) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => break,
                }
            }
            // Read timeout (slow client) or a broken socket: disconnect.
            Err(_) => break,
        }
    }
}

/// Per-connection knobs, copied out of [`ServeOptions`] for the handler
/// threads.
#[derive(Clone, Copy)]
struct ConnectionOptions {
    max_frame_bytes: usize,
    idle_timeout_secs: u64,
    write_timeout_secs: u64,
}

/// `sa serve`: bind the socket, recover persisted jobs, serve requests
/// until a `shutdown` op (in-flight units checkpoint and the jobs stay
/// resumable by the next daemon start).
pub fn serve(args: &[String]) -> Result<ExitCode, String> {
    let options = parse_serve_options(args)?;
    let jobs_root = jobs_dir(&options.state_dir);
    fs::create_dir_all(&jobs_root)
        .map_err(|e| format!("cannot create {}: {e}", jobs_root.display()))?;

    // Paused start: recovery resubmits every unfinished job before any unit
    // dispatches, so recovered work keeps its original priority order.
    let limits = SchedulerLimits {
        max_queued_units: options.max_queued_units,
        client_quota: options.client_quota,
        client_workers: options.client_workers,
        unit_timeout: (options.unit_timeout_secs > 0)
            .then(|| Duration::from_secs(options.unit_timeout_secs)),
    };
    let scheduler = JobScheduler::with_limits(options.workers.max(1), false, limits);
    scheduler.add_sink(Arc::new(ArchiveSink {
        jobs_dir: jobs_root.clone(),
    }));
    let archive = Mutex::new(BTreeMap::new());
    let next_id = recover_jobs(
        &scheduler,
        &options.state_dir,
        &archive,
        options.checkpoint_every,
    );
    scheduler.start();

    let daemon = Arc::new(Daemon {
        scheduler,
        state_dir: options.state_dir.clone(),
        checkpoint_every: options.checkpoint_every,
        keep: options.keep,
        keep_age_secs: options.keep_age_secs,
        archive,
        next_id: Mutex::new(next_id),
        stop: CancelToken::new(),
    });
    if daemon.keep > 0 || daemon.keep_age_secs > 0 {
        prune_archive(&daemon, daemon.keep, daemon.keep_age_secs);
    }

    // A previous daemon's socket file would make bind fail; a stale one
    // (crash) is safe to replace because connects to it already error.
    if options.socket.exists() {
        fs::remove_file(&options.socket).map_err(|e| {
            format!(
                "cannot remove stale socket {}: {e}",
                options.socket.display()
            )
        })?;
    }
    let listener = UnixListener::bind(&options.socket)
        .map_err(|e| format!("cannot bind {}: {e}", options.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure socket: {e}"))?;

    println!(
        "sa serve: listening on {} (state: {}, protocol v{PROTOCOL_VERSION})",
        options.socket.display(),
        options.state_dir.display()
    );

    let connection_options = ConnectionOptions {
        max_frame_bytes: options.max_frame_bytes.max(64),
        idle_timeout_secs: options.idle_timeout_secs,
        write_timeout_secs: options.write_timeout_secs,
    };
    let mut handlers = Vec::new();
    while !daemon.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let daemon = Arc::clone(&daemon);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(daemon, stream, &connection_options);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }

    // Shutdown: checkpoint in-flight units, join workers, then let the
    // connection handlers drain their final event streams.
    daemon.scheduler.shutdown();
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = fs::remove_file(&options.socket);
    println!("sa serve: shut down (jobs remain resumable on restart)");
    Ok(ExitCode::SUCCESS)
}
