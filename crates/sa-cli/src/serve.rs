//! `sa serve` — the simulation-as-a-service daemon.
//!
//! A long-lived process wrapping one [`JobScheduler`] behind a Unix domain
//! socket. Clients speak newline-delimited JSON (one request object per
//! line, one response object per line; `watch` switches the connection to
//! an NDJSON event stream). The full wire protocol — every request,
//! response and event with field-by-field schemas — is documented in
//! `docs/serve-protocol.md`; `protocol_version` is 1.
//!
//! State layout under `--state-dir` (default `serve-state/`):
//!
//! ```text
//! jobs/<id>/job.json     # submitted config (inline spec) — written first
//! jobs/<id>/out/         # the job's output directory (state/ + reports)
//! jobs/<id>/result.json  # final status, written only on terminal states
//!                        # that must NOT resume (finished/failed/cancelled)
//! ```
//!
//! Crash recovery is a restart-time rescan: every `job.json` without a
//! `result.json` is resubmitted with its original id and priority and
//! `resume = true`, so in-flight units continue from their checkpoints and
//! a SIGKILLed-and-restarted daemon produces byte-identical
//! `EXPERIMENTS.json`/`.md` (pinned by `tests/serve.rs` and the CI
//! `serve-smoke` job).

use sa_bench::jobs::{
    write_atomic, JobConfig, JobEvent, JobId, JobScheduler, JobState, JobStatus, ResultSink,
};
use sa_model::json::JsonValue;
use sa_runtime::parallel::{thread_count, CancelToken};
use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The protocol generation this daemon speaks (sent in the `hello` line;
/// see `docs/serve-protocol.md` for the compatibility rules).
pub const PROTOCOL_VERSION: u64 = 1;

struct ServeOptions {
    socket: PathBuf,
    state_dir: PathBuf,
    workers: usize,
    checkpoint_every: u64,
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        socket: PathBuf::new(),
        state_dir: PathBuf::from("serve-state"),
        workers: thread_count(),
        checkpoint_every: 1000,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--socket" => options.socket = PathBuf::from(flag_value("--socket")?),
            "--state-dir" => options.state_dir = PathBuf::from(flag_value("--state-dir")?),
            "--workers" => {
                options.workers = flag_value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--checkpoint-every" => {
                options.checkpoint_every = flag_value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_string())?;
            }
            other => return Err(format!("unknown argument \"{other}\"")),
        }
    }
    if options.socket.as_os_str().is_empty() {
        return Err("sa serve needs --socket <path>".to_string());
    }
    Ok(options)
}

/// Everything the connection handlers share.
struct Daemon {
    scheduler: JobScheduler,
    state_dir: PathBuf,
    checkpoint_every: u64,
    /// Terminal statuses of jobs from previous daemon lives (restored from
    /// `result.json`); `status`/`watch` fall back to these.
    archive: Mutex<BTreeMap<JobId, JobStatus>>,
    /// The daemon's own id counter (ids must stay unique across restarts,
    /// which the scheduler alone cannot know about).
    next_id: Mutex<u64>,
    /// Fires on the `shutdown` op; the accept loop exits.
    stop: CancelToken,
}

/// Archives terminal statuses to `jobs/<id>/result.json` — except
/// interrupted ones, which must stay resumable on the next daemon start.
struct ArchiveSink {
    jobs_dir: PathBuf,
}

impl ResultSink for ArchiveSink {
    fn event(&self, event: &JobEvent) {
        let JobEvent::JobFinished { job, status } = event else {
            return;
        };
        if status.state == JobState::Interrupted {
            return;
        }
        let path = self.jobs_dir.join(job).join("result.json");
        if let Err(e) = write_atomic(&path, &status.to_json().render_pretty()) {
            eprintln!("sa serve: warning: {e}");
        }
    }
}

fn jobs_dir(state_dir: &Path) -> PathBuf {
    state_dir.join("jobs")
}

/// Serializes a job's submission so a restarted daemon can resubmit it.
fn job_json(id: &str, spec_text: &JsonValue, priority: i64, client: &str) -> JsonValue {
    JsonValue::object([
        ("job".to_string(), JsonValue::String(id.to_string())),
        ("spec".to_string(), spec_text.clone()),
        ("priority".to_string(), JsonValue::Number(priority as f64)),
        ("client".to_string(), JsonValue::String(client.to_string())),
    ])
}

/// Restart-time rescan: archive finished jobs, resubmit unfinished ones
/// (resume mode, original id/priority/client). Returns the next fresh id
/// counter value.
fn recover_jobs(
    scheduler: &JobScheduler,
    jobs_root: &Path,
    archive: &Mutex<BTreeMap<JobId, JobStatus>>,
    checkpoint_every: u64,
) -> Result<u64, String> {
    let mut next_id = 1u64;
    let mut entries: Vec<PathBuf> = match fs::read_dir(jobs_root) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return Ok(next_id),
    };
    entries.sort();
    for dir in entries {
        let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
            next_id = next_id.max(n + 1);
        }
        let job_path = dir.join("job.json");
        let Ok(text) = fs::read_to_string(&job_path) else {
            continue;
        };
        let doc = JsonValue::parse(&text)
            .map_err(|e| format!("corrupt job record {}: {e}", job_path.display()))?;
        if let Ok(result_text) = fs::read_to_string(dir.join("result.json")) {
            let status = JsonValue::parse(&result_text)
                .ok()
                .as_ref()
                .and_then(JobStatus::from_json)
                .ok_or_else(|| format!("corrupt result record in {}", dir.display()))?;
            archive.lock().unwrap().insert(id, status);
            continue;
        }
        let spec_doc = doc
            .get("spec")
            .ok_or_else(|| format!("{}: missing \"spec\"", job_path.display()))?;
        let spec = sa_bench::sweep::SweepSpec::from_json(spec_doc)
            .map_err(|e| format!("{}: {e}", job_path.display()))?;
        let mut config = JobConfig::new(spec, dir.join("out"));
        config.id = Some(id.clone());
        config.priority = doc.get("priority").and_then(|p| p.as_f64()).unwrap_or(0.0) as i64;
        config.client = doc
            .get("client")
            .and_then(|c| c.as_str())
            .unwrap_or("recovered")
            .to_string();
        config.checkpoint_every = checkpoint_every;
        config.resume = true;
        let receipt = scheduler.submit(config)?;
        eprintln!(
            "sa serve: recovered job {} ({} unit(s), {} already complete)",
            receipt.id, receipt.units, receipt.resumed_done
        );
    }
    Ok(next_id)
}

fn ok_response(extra: Vec<(String, JsonValue)>) -> JsonValue {
    let mut fields = vec![("ok".to_string(), JsonValue::Bool(true))];
    fields.extend(extra);
    JsonValue::object(fields)
}

fn err_response(message: &str) -> JsonValue {
    JsonValue::object([
        ("ok".to_string(), JsonValue::Bool(false)),
        ("error".to_string(), JsonValue::String(message.to_string())),
    ])
}

fn send_line(stream: &mut UnixStream, value: &JsonValue) -> std::io::Result<()> {
    stream.write_all(value.render().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Handles the `submit` op: resolve the spec (inline or by path), persist
/// the job record, then hand the job to the scheduler.
fn handle_submit(daemon: &Arc<Daemon>, request: &JsonValue) -> Result<JsonValue, String> {
    let spec_doc = match (request.get("spec"), request.get("spec_path")) {
        (Some(doc), _) => doc.clone(),
        (None, Some(path)) => {
            // The document (not the path) goes into the job record, so the
            // job survives the file being edited or deleted later.
            let path = path.as_str().ok_or("\"spec_path\" must be a string")?;
            let text =
                fs::read_to_string(path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
            JsonValue::parse(&text).map_err(|e| format!("spec {path} is not valid JSON: {e}"))?
        }
        (None, None) => return Err("submit needs \"spec\" (inline) or \"spec_path\"".to_string()),
    };
    let spec = sa_bench::sweep::SweepSpec::from_json(&spec_doc)?;
    let priority = request
        .get("priority")
        .and_then(|p| p.as_f64())
        .unwrap_or(0.0) as i64;
    let client = request
        .get("client")
        .and_then(|c| c.as_str())
        .unwrap_or("anonymous")
        .to_string();

    let id = {
        let mut next = daemon.next_id.lock().unwrap();
        let id = format!("j{}", *next);
        *next += 1;
        id
    };
    let job_dir = jobs_dir(&daemon.state_dir).join(&id);
    fs::create_dir_all(&job_dir)
        .map_err(|e| format!("cannot create {}: {e}", job_dir.display()))?;
    // The record goes to disk before the scheduler sees the job: a crash
    // after this point recovers the job, a crash before it loses only the
    // un-acknowledged submit.
    write_atomic(
        &job_dir.join("job.json"),
        &job_json(&id, &spec_doc, priority, &client).render_pretty(),
    )?;

    let mut config = JobConfig::new(spec, job_dir.join("out"));
    config.id = Some(id);
    config.priority = priority;
    config.client = client;
    config.checkpoint_every = daemon.checkpoint_every;
    let receipt = daemon.scheduler.submit(config)?;
    Ok(ok_response(vec![
        ("job".to_string(), JsonValue::String(receipt.id)),
        ("units".to_string(), JsonValue::Number(receipt.units as f64)),
        (
            "resumed_done".to_string(),
            JsonValue::Number(receipt.resumed_done as f64),
        ),
    ]))
}

/// Handles `watch`: acknowledge, then stream the job's events as NDJSON
/// until `job-finished`, after which the connection returns to request
/// mode.
fn handle_watch(daemon: &Arc<Daemon>, stream: &mut UnixStream, job: &str) -> std::io::Result<bool> {
    let Some(rx) = daemon.scheduler.watch(job) else {
        // Jobs archived by a previous daemon life still answer a watch with
        // their (terminal) outcome.
        let archived = daemon.archive.lock().unwrap().get(job).cloned();
        return match archived {
            Some(status) => {
                send_line(stream, &ok_response(vec![]))?;
                let event = JobEvent::JobFinished {
                    job: job.to_string(),
                    status,
                };
                send_line(stream, &event.to_json())?;
                Ok(true)
            }
            None => {
                send_line(stream, &err_response(&format!("unknown job \"{job}\"")))?;
                Ok(true)
            }
        };
    };
    send_line(stream, &ok_response(vec![]))?;
    while let Ok(event) = rx.recv() {
        let last = matches!(event, JobEvent::JobFinished { .. });
        send_line(stream, &event.to_json())?;
        if last {
            break;
        }
    }
    Ok(true)
}

/// Dispatches one request line; returns `false` when the connection should
/// close (daemon shutting down).
fn handle_request(
    daemon: &Arc<Daemon>,
    stream: &mut UnixStream,
    line: &str,
) -> std::io::Result<bool> {
    let request = match JsonValue::parse(line) {
        Ok(request) => request,
        Err(e) => {
            send_line(stream, &err_response(&format!("bad request: {e}")))?;
            return Ok(true);
        }
    };
    let op = request.get("op").and_then(|o| o.as_str()).unwrap_or("");
    let job_field = || -> Result<&str, String> {
        request
            .get("job")
            .and_then(|j| j.as_str())
            .ok_or_else(|| format!("{op} needs a \"job\" field"))
    };
    match op {
        "ping" => send_line(
            stream,
            &ok_response(vec![(
                "protocol_version".to_string(),
                JsonValue::Number(PROTOCOL_VERSION as f64),
            )]),
        )?,
        "submit" => {
            let response = handle_submit(daemon, &request).unwrap_or_else(|e| err_response(&e));
            send_line(stream, &response)?;
        }
        "status" => {
            let response = match request.get("job").and_then(|j| j.as_str()) {
                Some(job) => {
                    let status = daemon
                        .scheduler
                        .status(job)
                        .or_else(|| daemon.archive.lock().unwrap().get(job).cloned());
                    match status {
                        Some(status) => ok_response(vec![("status".to_string(), status.to_json())]),
                        None => err_response(&format!("unknown job \"{job}\"")),
                    }
                }
                None => {
                    let mut all: BTreeMap<JobId, JobStatus> =
                        daemon.archive.lock().unwrap().clone();
                    for status in daemon.scheduler.statuses() {
                        all.insert(status.id.clone(), status);
                    }
                    ok_response(vec![(
                        "jobs".to_string(),
                        JsonValue::Array(all.values().map(JobStatus::to_json).collect()),
                    )])
                }
            };
            send_line(stream, &response)?;
        }
        "cancel" => {
            let response = match job_field() {
                Ok(job) => {
                    if daemon.scheduler.cancel(job)
                        || daemon.archive.lock().unwrap().contains_key(job)
                    {
                        ok_response(vec![])
                    } else {
                        err_response(&format!("unknown job \"{job}\""))
                    }
                }
                Err(e) => err_response(&e),
            };
            send_line(stream, &response)?;
        }
        "watch" => {
            let response = match job_field() {
                Ok(job) => return handle_watch(daemon, stream, job),
                Err(e) => err_response(&e),
            };
            send_line(stream, &response)?;
        }
        "drain" => {
            // Blocks this connection until every accepted job is terminal;
            // other connections keep being served meanwhile.
            daemon.scheduler.drain();
            send_line(stream, &ok_response(vec![]))?;
        }
        "shutdown" => {
            send_line(stream, &ok_response(vec![]))?;
            daemon.stop.cancel();
            return Ok(false);
        }
        other => send_line(stream, &err_response(&format!("unknown op \"{other}\"")))?,
    }
    Ok(true)
}

fn handle_connection(daemon: Arc<Daemon>, stream: UnixStream) {
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let hello = JsonValue::object([
        ("event".to_string(), JsonValue::String("hello".to_string())),
        (
            "protocol_version".to_string(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ]);
    if send_line(&mut writer, &hello).is_err() {
        return;
    }
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match handle_request(&daemon, &mut writer, line.trim()) {
            Ok(true) => {}
            Ok(false) | Err(_) => break,
        }
    }
}

/// `sa serve`: bind the socket, recover persisted jobs, serve requests
/// until a `shutdown` op (in-flight units checkpoint and the jobs stay
/// resumable by the next daemon start).
pub fn serve(args: &[String]) -> Result<ExitCode, String> {
    let options = parse_serve_options(args)?;
    let jobs_root = jobs_dir(&options.state_dir);
    fs::create_dir_all(&jobs_root)
        .map_err(|e| format!("cannot create {}: {e}", jobs_root.display()))?;

    // Paused start: recovery resubmits every unfinished job before any unit
    // dispatches, so recovered work keeps its original priority order.
    let scheduler = JobScheduler::new_paused(options.workers.max(1));
    scheduler.add_sink(Arc::new(ArchiveSink {
        jobs_dir: jobs_root.clone(),
    }));
    let archive = Mutex::new(BTreeMap::new());
    let next_id = recover_jobs(&scheduler, &jobs_root, &archive, options.checkpoint_every)?;
    scheduler.start();

    // A previous daemon's socket file would make bind fail; a stale one
    // (crash) is safe to replace because connects to it already error.
    if options.socket.exists() {
        fs::remove_file(&options.socket).map_err(|e| {
            format!(
                "cannot remove stale socket {}: {e}",
                options.socket.display()
            )
        })?;
    }
    let listener = UnixListener::bind(&options.socket)
        .map_err(|e| format!("cannot bind {}: {e}", options.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure socket: {e}"))?;

    let daemon = Arc::new(Daemon {
        scheduler,
        state_dir: options.state_dir.clone(),
        checkpoint_every: options.checkpoint_every,
        archive,
        next_id: Mutex::new(next_id),
        stop: CancelToken::new(),
    });
    println!(
        "sa serve: listening on {} (state: {}, protocol v{PROTOCOL_VERSION})",
        options.socket.display(),
        options.state_dir.display()
    );

    let mut handlers = Vec::new();
    while !daemon.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let daemon = Arc::clone(&daemon);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(daemon, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }

    // Shutdown: checkpoint in-flight units, join workers, then let the
    // connection handlers drain their final event streams.
    daemon.scheduler.shutdown();
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = fs::remove_file(&options.socket);
    println!("sa serve: shut down (jobs remain resumable on restart)");
    Ok(ExitCode::SUCCESS)
}
