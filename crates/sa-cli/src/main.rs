//! `sa` — the sweep runner CLI.
//!
//! Runs declarative experiment sweeps (see [`sa_bench::sweep`]) from JSON
//! spec files, with checkpoint/resume, and persists the results to
//! `EXPERIMENTS.json` (machine-readable, byte-deterministic) and
//! `EXPERIMENTS.md` (human-readable). Also hosts the CI perf gate
//! (`sa bench-diff`), which compares freshly measured micro-benchmark
//! medians against the committed `BENCH_micro.json`.
//!
//! ```text
//! sa run    <spec.json> [--out DIR] [--checkpoint-every N]
//!                       [--interrupt-after-steps N] [--interrupt-units K]
//! sa resume <spec.json> [--out DIR] [--checkpoint-every N]
//! sa check  <spec.json | spec-dir>
//! sa bench-diff <committed.json> <fresh.json> [--max-regress FRAC]
//!                                             [--max-regress-sharded FRAC]
//! sa bench-record [--out BENCH_micro.json]
//! ```
//!
//! `run` starts a sweep from scratch; `resume` picks up completed unit
//! results and in-flight checkpoints from the output directory's `state/`
//! subdirectory and continues. A resumed sweep produces a byte-identical
//! `EXPERIMENTS.json` to an uninterrupted one (pinned by the CI
//! `sweep-smoke` job and `tests/checkpoint_roundtrip.rs`).
//! `--interrupt-after-steps` simulates a kill: affected units stop at a
//! step boundary after writing their checkpoint.

mod benchdiff;
mod benchrecord;
mod runner;

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sa run    <spec.json> [--out DIR] [--checkpoint-every N] \
         [--interrupt-after-steps N] [--interrupt-units K]\n  sa resume <spec.json> [--out DIR] \
         [--checkpoint-every N]\n  sa check  <spec.json | spec-dir>\n  sa bench-diff \
         <committed.json> <fresh.json> [--max-regress FRAC] [--max-regress-sharded FRAC]\n  \
         sa bench-record [--out BENCH_micro.json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "run" => runner::run(&args[1..], false),
        "resume" => runner::run(&args[1..], true),
        "check" => runner::check(&args[1..]),
        "bench-diff" => benchdiff::run(&args[1..]),
        "bench-record" => benchrecord::run(&args[1..]),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command \"{other}\"")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sa: {message}");
            ExitCode::FAILURE
        }
    }
}
