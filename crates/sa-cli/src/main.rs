//! `sa` — the sweep runner CLI and simulation service.
//!
//! Runs declarative experiment sweeps (see [`sa_bench::sweep`]) from JSON
//! spec files, with checkpoint/resume, and persists the results to
//! `EXPERIMENTS.json` (machine-readable, byte-deterministic) and
//! `EXPERIMENTS.md` (human-readable). Batch `sa run` and the long-lived
//! `sa serve` daemon are two clients of the same job-scheduler core
//! ([`sa_bench::jobs`]); the daemon's wire protocol is documented in
//! `docs/serve-protocol.md`. Also hosts the CI perf gate (`sa bench-diff`),
//! which compares freshly measured micro-benchmark medians against the
//! committed `BENCH_micro.json`.
//!
//! ```text
//! sa run    <spec.json> [--out DIR] [--checkpoint-every N]
//!                       [--interrupt-after-steps N] [--interrupt-units K]
//! sa resume <spec.json> [--out DIR] [--checkpoint-every N]
//! sa check  <spec.json | spec-dir>
//! sa verify <spec.json> [--out DIR]
//! sa serve    --socket PATH [--state-dir DIR] [--workers N] [--checkpoint-every N]
//!             [--keep N] [--keep-age-secs S] [--max-frame-bytes N]
//!             [--idle-timeout-secs S] [--write-timeout-secs S]
//!             [--unit-timeout-secs S] [--max-queued-units N]
//!             [--client-quota N] [--client-workers N]
//! sa submit   <spec.json> --socket PATH [--priority N] [--client NAME] [--watch]
//! sa status   [job]       --socket PATH
//! sa watch    <job|--all> --socket PATH
//! sa cancel   <job>       --socket PATH
//! sa gc       --socket PATH [--keep N] [--max-age-secs S]
//! sa drain    --socket PATH
//! sa shutdown --socket PATH
//! sa ping     --socket PATH [--wait SECS]
//! sa bench-diff <committed.json> <fresh.json> [--max-regress FRAC]
//!                                             [--max-regress-sharded FRAC]
//! sa bench-record [--out BENCH_micro.json]
//! ```
//!
//! `run` starts a sweep from scratch; `resume` picks up completed unit
//! results and in-flight checkpoints from the output directory's `state/`
//! subdirectory and continues. A resumed sweep produces a byte-identical
//! `EXPERIMENTS.json` to an uninterrupted one (pinned by the CI
//! `sweep-smoke` job and `tests/checkpoint_roundtrip.rs`).
//! `--interrupt-after-steps` simulates a kill: affected units stop at a
//! step boundary after writing their checkpoint. The same guarantee holds
//! for the daemon, SIGKILL included (CI `serve-smoke`, `tests/serve.rs`).
//!
//! Runtime behavior is tuned through `SA_*` environment variables
//! (`SA_ENGINE`, `SA_ENGINE_THREADS`, `SA_BENCH_THREADS`,
//! `SA_FORCE_FULL_EVAL`, `SA_FORCE_CLOSURE_EVAL`, `SA_FORCE_FULL_ORACLE`,
//! `SA_VERIFY_MAX_STATES`, the `SA_SERVE_*` daemon limits, `SA_NO_FSYNC`,
//! and the `SA_IO_FAULTS` fault-injection seam) —
//! see `docs/env-vars.md` for the authoritative table.

mod benchdiff;
mod benchrecord;
mod client;
mod runner;
mod serve;
mod verify;

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sa run    <spec.json> [--out DIR] [--checkpoint-every N] \
         [--interrupt-after-steps N] [--interrupt-units K]\n  sa resume <spec.json> [--out DIR] \
         [--checkpoint-every N]\n  sa check  <spec.json | spec-dir>\n  sa verify <spec.json> [--out DIR]\n  sa serve    --socket PATH \
         [--state-dir DIR] [--workers N] [--checkpoint-every N]\n              [--keep N] \
         [--keep-age-secs S] [--max-frame-bytes N]\n              [--idle-timeout-secs S] \
         [--write-timeout-secs S] [--unit-timeout-secs S]\n              [--max-queued-units N] \
         [--client-quota N] [--client-workers N]\n  sa submit   <spec.json> \
         --socket PATH [--priority N] [--client NAME] [--watch]\n  sa status   [job]       \
         --socket PATH\n  sa watch    <job|--all> --socket PATH\n  sa cancel   <job>       \
         --socket PATH\n  sa gc       --socket PATH [--keep N] [--max-age-secs S]\n  sa drain    \
         --socket PATH\n  sa shutdown --socket PATH\n  sa ping     \
         --socket PATH [--wait SECS]\n  sa bench-diff <committed.json> <fresh.json> \
         [--max-regress FRAC] [--max-regress-sharded FRAC]\n  sa bench-record \
         [--out BENCH_micro.json]\n\nenvironment:\n  SA_ENGINE, SA_ENGINE_THREADS, \
         SA_BENCH_THREADS, SA_FORCE_FULL_EVAL,\n  SA_FORCE_CLOSURE_EVAL, SA_FORCE_FULL_ORACLE, \
         SA_VERIFY_MAX_STATES,\n  SA_SERVE_KEEP, SA_SERVE_KEEP_AGE_SECS, SA_SERVE_MAX_FRAME_BYTES,\n  \
         SA_SERVE_IDLE_TIMEOUT_SECS, SA_SERVE_WRITE_TIMEOUT_SECS,\n  SA_SERVE_UNIT_TIMEOUT_SECS, \
         SA_SERVE_MAX_QUEUED_UNITS, SA_SERVE_CLIENT_QUOTA,\n  SA_SERVE_CLIENT_WORKERS, \
         SA_NO_FSYNC, SA_IO_FAULTS — see docs/env-vars.md"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "run" => runner::run(&args[1..], false),
        "resume" => runner::run(&args[1..], true),
        "check" => runner::check(&args[1..]),
        "verify" => verify::verify(&args[1..]),
        "serve" => serve::serve(&args[1..]),
        "submit" => client::submit(&args[1..]),
        "status" => client::status(&args[1..]),
        "watch" => client::watch(&args[1..]),
        "cancel" => client::cancel(&args[1..]),
        "gc" => client::gc(&args[1..]),
        "drain" => client::drain(&args[1..]),
        "shutdown" => client::shutdown(&args[1..]),
        "ping" => client::ping(&args[1..]),
        "bench-diff" => benchdiff::run(&args[1..]),
        "bench-record" => benchrecord::run(&args[1..]),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command \"{other}\"")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("sa: {message}");
            ExitCode::FAILURE
        }
    }
}
