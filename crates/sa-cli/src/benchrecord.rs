//! `sa bench-record` — re-record the committed micro-benchmark baselines.
//!
//! Runs the workspace's `criterion_micro` bench with `BENCH_MICRO_JSON`
//! pointed at the target path (default: the repository's committed
//! `BENCH_micro.json`), so refreshing the baselines after a perf change —
//! or on a multi-core host, per the ROADMAP's standing re-record item — is
//! one command instead of a hand-managed env var and file move:
//!
//! ```text
//! sa bench-record [--out BENCH_micro.json]
//! ```
//!
//! The subcommand shells out to `cargo bench -p sa-bench --bench
//! criterion_micro` (honoring `$CARGO` when set, e.g. under `cargo run`),
//! then verifies the recording parses as a benchmark record array.

use sa_model::json::JsonValue;
use std::process::{Command, ExitCode};

pub fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut out = String::from("BENCH_micro.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or("--out needs a path, e.g. BENCH_micro.json")?;
            }
            other => return Err(format!("unknown argument \"{other}\"")),
        }
    }
    // The bench runs with cargo's working directory, so hand it an absolute
    // path.
    let out_abs = std::env::current_dir()
        .map_err(|e| format!("cannot resolve the working directory: {e}"))?
        .join(&out);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    eprintln!("bench-record: running criterion_micro (this takes a few minutes)...");
    let status = Command::new(&cargo)
        .args(["bench", "-p", "sa-bench", "--bench", "criterion_micro"])
        .env("BENCH_MICRO_JSON", &out_abs)
        .status()
        .map_err(|e| format!("cannot spawn {cargo}: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed with {status}"));
    }
    let text = std::fs::read_to_string(&out_abs)
        .map_err(|e| format!("bench run left no recording at {}: {e}", out_abs.display()))?;
    let value = JsonValue::parse(&text).map_err(|e| format!("{}: {e}", out_abs.display()))?;
    let count = value
        .as_array()
        .map(|records| records.len())
        .ok_or_else(|| format!("{}: expected a benchmark record array", out_abs.display()))?;
    println!(
        "bench-record: {count} benchmark medians recorded to {}",
        out_abs.display()
    );
    Ok(ExitCode::SUCCESS)
}
