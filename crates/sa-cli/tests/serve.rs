//! End-to-end tests for the `sa serve` daemon: protocol smoke over the Unix
//! socket, two concurrent clients, and the crash-recovery guarantee — a
//! daemon SIGKILLed mid-sweep and restarted must produce
//! `EXPERIMENTS.json`/`.md` byte-identical to an uninterrupted batch run,
//! across both `SA_ENGINE` legs and both checkpoint formats.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SA: &str = env!("CARGO_BIN_EXE_sa");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sa-serve-test-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spec slow enough (adversarial min-plus-one on a torus) that a kill
/// lands mid-sweep, with a configurable checkpoint encoding.
fn slow_spec(format: &str) -> String {
    format!(
        r#"{{
            "name": "serve-kill",
            "graph_seed": 5,
            "checkpoint_format": "{format}",
            "tasks": [{{
                "id": "T", "kind": "stabilization",
                "algorithms": ["min-plus-one"],
                "topologies": [{{"kind": "torus", "rows": 32, "cols": 32}}],
                "schedulers": ["synchronous"],
                "seeds": 2, "max_rounds": 20000
            }}]
        }}"#
    )
}

fn quick_spec(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "graph_seed": 7,
            "tasks": [{{
                "id": "T", "kind": "stabilization",
                "topologies": [{{"kind": "cycle", "n": 6}}],
                "schedulers": ["synchronous"],
                "seeds": 2, "max_rounds": 2000
            }}]
        }}"#
    )
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, engine: Option<&str>) -> Daemon {
        let socket = dir.join("sa.sock");
        let mut command = Command::new(SA);
        command
            .args(["serve", "--socket"])
            .arg(&socket)
            .arg("--state-dir")
            .arg(dir.join("state"))
            .args(["--workers", "2", "--checkpoint-every", "3"])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(engine) = engine {
            command.env("SA_ENGINE", engine);
        }
        let child = command.spawn().expect("spawn daemon");
        let daemon = Daemon { child, socket };
        daemon.await_up();
        daemon
    }

    fn await_up(&self) {
        let status = Command::new(SA)
            .args(["ping", "--socket"])
            .arg(&self.socket)
            .args(["--wait", "30"])
            .stdout(Stdio::null())
            .status()
            .expect("run sa ping");
        assert!(status.success(), "daemon did not come up");
    }

    /// Raw protocol connection (consumes the hello line).
    fn connect(&self) -> (BufReader<UnixStream>, UnixStream) {
        let stream = UnixStream::connect(&self.socket).expect("connect");
        let writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        assert!(
            hello.contains("\"protocol_version\": 1"),
            "bad hello: {hello}"
        );
        (reader, writer)
    }

    fn request(&self, body: &str) -> String {
        let (mut reader, mut writer) = self.connect();
        writeln!(writer, "{body}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    fn sigkill(&mut self) {
        self.child.kill().expect("SIGKILL daemon");
        self.child.wait().expect("reap daemon");
    }

    fn shutdown(&mut self) {
        let response = self.request(r#"{"op": "shutdown"}"#);
        assert!(response.contains("\"ok\": true"), "{response}");
        self.child.wait().expect("daemon exits after shutdown");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit(daemon: &Daemon, spec_path: &Path, extra: &str) -> String {
    let response = daemon.request(&format!(
        r#"{{"op": "submit", "spec_path": "{}"{extra}}}"#,
        spec_path.display()
    ));
    assert!(
        response.contains("\"ok\": true"),
        "submit failed: {response}"
    );
    let marker = "\"job\": \"";
    let start = response.find(marker).expect("job id in response") + marker.len();
    let end = start + response[start..].find('"').unwrap();
    response[start..end].to_string()
}

/// Blocks until the job is terminal; returns the streamed event lines.
fn watch(daemon: &Daemon, job: &str) -> Vec<String> {
    let (reader, mut writer) = daemon.connect();
    writeln!(writer, r#"{{"op": "watch", "job": "{job}"}}"#).unwrap();
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.unwrap();
        let done = line.contains("\"event\": \"job-finished\"");
        lines.push(line);
        if done {
            return lines;
        }
    }
    panic!("stream ended without job-finished: {lines:?}");
}

/// Runs the batch baseline for `spec_path` and returns the report bytes.
fn batch_baseline(dir: &Path, spec_path: &Path, engine: Option<&str>) -> (Vec<u8>, Vec<u8>) {
    let out = dir.join("baseline");
    let mut command = Command::new(SA);
    command
        .arg("run")
        .arg(spec_path)
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null());
    if let Some(engine) = engine {
        command.env("SA_ENGINE", engine);
    }
    let status = command.status().expect("run batch baseline");
    assert!(status.success(), "baseline run failed");
    (
        fs::read(out.join("EXPERIMENTS.json")).unwrap(),
        fs::read(out.join("EXPERIMENTS.md")).unwrap(),
    )
}

/// The crash-recovery guarantee, end to end: SIGKILL the daemon once a unit
/// has checkpointed, restart it on the same state directory, and byte-diff
/// the recovered reports against an uninterrupted batch run.
fn kill_restart_byte_diff(tag: &str, engine: Option<&str>, format: &str) {
    let dir = temp_dir(tag);
    let spec_path = dir.join("spec.json");
    fs::write(&spec_path, slow_spec(format)).unwrap();

    let mut daemon = Daemon::start(&dir, engine);
    let job = submit(&daemon, &spec_path, "");
    let out_dir = dir.join("state").join("jobs").join(&job).join("out");

    // Wait for proof of mid-flight work (an in-flight checkpoint), then
    // SIGKILL — no graceful anything.
    let state_dir = out_dir.join("state");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let has_ckpt = fs::read_dir(&state_dir)
            .map(|entries| {
                entries
                    .flatten()
                    .any(|e| e.file_name().to_string_lossy().contains(".ckpt."))
            })
            .unwrap_or(false);
        if has_ckpt {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.sigkill();
    assert!(
        !out_dir.join("EXPERIMENTS.json").exists(),
        "the kill landed after the job finished; spec is too small for this test"
    );

    // Restart on the same state dir: the daemon rescans, resumes the job
    // under its original id, and finishes it.
    let mut daemon = Daemon::start(&dir, engine);
    let lines = watch(&daemon, &job);
    let last = lines.last().unwrap();
    assert!(last.contains("\"state\": \"finished\""), "{last}");
    assert!(last.contains("\"clean\": true"), "{last}");
    daemon.shutdown();

    let (baseline_json, baseline_md) = batch_baseline(&dir, &spec_path, engine);
    let daemon_json = fs::read(out_dir.join("EXPERIMENTS.json")).unwrap();
    let daemon_md = fs::read(out_dir.join("EXPERIMENTS.md")).unwrap();
    assert_eq!(
        baseline_json, daemon_json,
        "EXPERIMENTS.json differs from an uninterrupted run"
    );
    assert_eq!(
        baseline_md, daemon_md,
        "EXPERIMENTS.md differs from an uninterrupted run"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_recovery_serial_engine_json_checkpoints() {
    kill_restart_byte_diff("serial-json", Some("serial"), "json");
}

#[test]
fn sigkill_recovery_serial_engine_binary_checkpoints() {
    kill_restart_byte_diff("serial-bin", Some("serial"), "binary");
}

#[test]
fn sigkill_recovery_sharded_engine_json_checkpoints() {
    kill_restart_byte_diff("sharded-json", Some("sharded"), "json");
}

#[test]
fn sigkill_recovery_sharded_engine_binary_checkpoints() {
    kill_restart_byte_diff("sharded-bin", Some("sharded"), "binary");
}

/// Protocol smoke: handshake, ping, bad requests, submit by inline spec,
/// status, watch, cancel semantics, archived results across restart.
#[test]
fn protocol_smoke() {
    let dir = temp_dir("protocol");
    let mut daemon = Daemon::start(&dir, None);

    let pong = daemon.request(r#"{"op": "ping", "ignored_field": 42}"#);
    assert!(pong.contains("\"ok\": true"), "{pong}");
    assert!(pong.contains("\"protocol_version\": 1"), "{pong}");

    let bad = daemon.request("this is not json");
    assert!(bad.contains("\"ok\": false"), "{bad}");
    let unknown = daemon.request(r#"{"op": "frobnicate"}"#);
    assert!(unknown.contains("unknown op"), "{unknown}");
    let missing = daemon.request(r#"{"op": "cancel"}"#);
    assert!(missing.contains("cancel needs a"), "{missing}");
    let unknown_job = daemon.request(r#"{"op": "status", "job": "j999"}"#);
    assert!(unknown_job.contains("unknown job"), "{unknown_job}");

    // Inline-spec submit + watch to completion.
    let response = daemon.request(&format!(
        r#"{{"op": "submit", "spec": {}, "client": "smoke", "priority": 3}}"#,
        quick_spec("inline").replace('\n', " ")
    ));
    assert!(response.contains("\"ok\": true"), "{response}");
    assert!(response.contains("\"units\": 2"), "{response}");
    let job = submit(
        &daemon,
        &write_spec(&dir, "quick.json", &quick_spec("filed")),
        "",
    );
    let lines = watch(&daemon, &job);
    assert!(
        lines.last().unwrap().contains("\"state\": \"finished\""),
        "{lines:?}"
    );

    // Statuses survive a clean restart via the result archive.
    daemon.shutdown();
    let mut daemon = Daemon::start(&dir, None);
    let status = daemon.request(&format!(r#"{{"op": "status", "job": "{job}"}}"#));
    assert!(status.contains("\"state\": \"finished\""), "{status}");
    // Watching an archived job yields a synthetic job-finished immediately.
    let lines = watch(&daemon, &job);
    assert_eq!(lines.len(), 2, "{lines:?}"); // ok + job-finished
                                             // Fresh ids keep counting upward instead of clashing with archived ones.
    let next = submit(
        &daemon,
        &write_spec(&dir, "next.json", &quick_spec("next")),
        "",
    );
    assert_ne!(next, job);
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

fn write_spec(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    fs::write(&path, body).unwrap();
    path
}

/// Two clients over the socket: both jobs run to completion and report
/// their own client labels and priorities.
#[test]
fn two_clients_share_the_daemon() {
    let dir = temp_dir("two-clients");
    let mut daemon = Daemon::start(&dir, None);
    let spec_a = write_spec(&dir, "a.json", &quick_spec("client-a"));
    let spec_b = write_spec(&dir, "b.json", &quick_spec("client-b"));
    let job_a = submit(&daemon, &spec_a, r#", "client": "alice", "priority": 1"#);
    let job_b = submit(&daemon, &spec_b, r#", "client": "bob", "priority": 9"#);
    assert_ne!(job_a, job_b);
    watch(&daemon, &job_a);
    watch(&daemon, &job_b);
    let statuses = daemon.request(r#"{"op": "status"}"#);
    for needle in [
        "\"client\": \"alice\"",
        "\"client\": \"bob\"",
        "\"priority\": 9",
    ] {
        assert!(statuses.contains(needle), "{statuses}");
    }
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}
