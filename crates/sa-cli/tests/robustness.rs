//! Fault-tolerance tests for the hardened `sa serve` daemon.
//!
//! The centerpiece is the disk-fault matrix: for each fault kind that kills
//! the process (`kill`, `torn`), sweep the fault index through *every*
//! I/O operation the daemon performs for a job (`SA_IO_FAULTS={i}={kind}`),
//! and prove the crash-recovery contract at each point — a restarted daemon
//! recovers every acknowledged job to `EXPERIMENTS.json`/`.md` bytes
//! identical to an uninterrupted batch run, and never panics or wedges on
//! whatever the crash left behind. The sweep terminates when an index runs
//! past the last I/O operation (the daemon survives untouched).
//!
//! Around it: graceful `ENOSPC` degradation, oversized/malformed frames,
//! overload shedding + clean drain, idle-timeout disconnects, the unit
//! watchdog end to end, quarantine of corrupt state at restart, `gc`
//! retention, per-client quotas on the wire, and the `watch --all`
//! firehose.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SA: &str = env!("CARGO_BIN_EXE_sa");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sa-robust-test-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small deterministic spec (two units) — the fault-matrix workload.
fn quick_spec(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "graph_seed": 7,
            "tasks": [{{
                "id": "T", "kind": "stabilization",
                "topologies": [{{"kind": "cycle", "n": 6}}],
                "schedulers": ["synchronous"],
                "seeds": 2, "max_rounds": 2000
            }}]
        }}"#
    )
}

/// A spec slow enough that its units are still queued/running while the
/// test pokes at the daemon.
fn slow_spec(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "graph_seed": 5,
            "tasks": [{{
                "id": "T", "kind": "stabilization",
                "algorithms": ["min-plus-one"],
                "topologies": [{{"kind": "torus", "rows": 32, "cols": 32}}],
                "schedulers": ["round-robin"],
                "seeds": 2, "max_rounds": 20000
            }}]
        }}"#
    )
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(dir: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let socket = dir.join("sa.sock");
        let mut command = Command::new(SA);
        command
            .args(["serve", "--socket"])
            .arg(&socket)
            .arg("--state-dir")
            .arg(dir.join("state"))
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (key, value) in envs {
            command.env(key, value);
        }
        let child = command.spawn().expect("spawn daemon");
        let daemon = Daemon { child, socket };
        let status = Command::new(SA)
            .args(["ping", "--socket"])
            .arg(&daemon.socket)
            .args(["--wait", "30"])
            .stdout(Stdio::null())
            .status()
            .expect("run sa ping");
        assert!(status.success(), "daemon did not come up");
        daemon
    }

    /// Raw protocol connection; `None` if the daemon is gone.
    fn connect(&self) -> Option<(BufReader<UnixStream>, UnixStream)> {
        let stream = UnixStream::connect(&self.socket).ok()?;
        let writer = stream.try_clone().ok()?;
        let mut reader = BufReader::new(stream);
        let mut hello = String::new();
        if reader.read_line(&mut hello).ok()? == 0 {
            return None;
        }
        Some((reader, writer))
    }

    /// One request/response round trip; `None` if the daemon died mid-way.
    fn request(&self, body: &str) -> Option<String> {
        let (mut reader, mut writer) = self.connect()?;
        writeln!(writer, "{body}").ok()?;
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        Some(line)
    }

    /// Streams a job's events until `job-finished`; `None` if the daemon
    /// died (or the job is unknown) before the terminal event.
    fn watch(&self, job: &str) -> Option<Vec<String>> {
        let (reader, mut writer) = self.connect()?;
        writeln!(writer, r#"{{"op": "watch", "job": "{job}"}}"#).ok()?;
        let mut lines = Vec::new();
        for line in reader.lines() {
            let line = line.ok()?;
            let done = line.contains("\"event\": \"job-finished\"");
            let error = line.contains("\"ok\": false");
            lines.push(line);
            if done {
                return Some(lines);
            }
            if error {
                return None;
            }
        }
        None
    }

    /// Graceful shutdown; true only if the op succeeded and the process
    /// exited cleanly.
    fn try_shutdown(&mut self) -> bool {
        let Some(response) = self.request(r#"{"op": "shutdown"}"#) else {
            return false;
        };
        if !response.contains("\"ok\": true") {
            return false;
        }
        self.child.wait().map(|s| s.success()).unwrap_or(false)
    }

    fn shutdown(&mut self) {
        assert!(self.try_shutdown(), "daemon did not shut down cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn write_spec(dir: &Path, name: &str, body: &str) -> PathBuf {
    let path = dir.join(name);
    fs::write(&path, body).unwrap();
    path
}

fn extract_job(response: &str) -> String {
    let marker = "\"job\": \"";
    let start = response.find(marker).expect("job id in response") + marker.len();
    let end = start + response[start..].find('"').unwrap();
    response[start..end].to_string()
}

/// Uninterrupted batch reference run for a spec.
fn batch_baseline(dir: &Path, spec_path: &Path) -> (Vec<u8>, Vec<u8>) {
    let out = dir.join("baseline");
    let status = Command::new(SA)
        .arg("run")
        .arg(spec_path)
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .status()
        .expect("run batch baseline");
    assert!(status.success(), "baseline run failed");
    (
        fs::read(out.join("EXPERIMENTS.json")).unwrap(),
        fs::read(out.join("EXPERIMENTS.md")).unwrap(),
    )
}

fn assert_byte_identical(out_dir: &Path, baseline: &(Vec<u8>, Vec<u8>), context: &str) {
    assert_eq!(
        fs::read(out_dir.join("EXPERIMENTS.json")).unwrap(),
        baseline.0,
        "EXPERIMENTS.json differs from the uninterrupted baseline ({context})"
    );
    assert_eq!(
        fs::read(out_dir.join("EXPERIMENTS.md")).unwrap(),
        baseline.1,
        "EXPERIMENTS.md differs from the uninterrupted baseline ({context})"
    );
}

/// The fault matrix: inject `kind` at I/O operation `index` for every index
/// until one runs past the daemon's last I/O op for the workload. At every
/// point: if the submit was acknowledged, the restarted daemon must recover
/// the job to byte-identical reports; if not, the restarted daemon must
/// still come up healthy (resurrecting the un-acked job is allowed — then
/// it too must finish identically).
fn fault_point_sweep(kind: &str) {
    let base = temp_dir(&format!("fault-{kind}"));
    let spec_path = write_spec(&base, "spec.json", &quick_spec("fault-matrix"));
    let baseline = batch_baseline(&base, &spec_path);
    let serve_args = ["--workers", "1", "--checkpoint-every", "2"];

    const CAP: usize = 250;
    let mut survived = None;
    for index in 0..CAP {
        let dir = base.join(format!("i{index}"));
        fs::create_dir_all(&dir).unwrap();
        let plan = format!("{index}={kind}");
        let context = format!("{kind} at op {index}");
        let mut daemon = Daemon::start(&dir, &serve_args, &[("SA_IO_FAULTS", &plan)]);

        let ack = daemon
            .request(&format!(
                r#"{{"op": "submit", "spec_path": "{}"}}"#,
                spec_path.display()
            ))
            .filter(|r| r.contains("\"ok\": true"));
        let job = ack.as_deref().map(extract_job);
        let finished = job
            .as_deref()
            .and_then(|job| daemon.watch(job))
            .is_some_and(|lines| lines.last().unwrap().contains("\"state\": \"finished\""));
        if finished && daemon.try_shutdown() {
            // The whole lifecycle ran without the injected fault firing:
            // `index` is past the daemon's last I/O op, the sweep is done.
            let out = dir
                .join("state/jobs")
                .join(job.as_deref().unwrap())
                .join("out");
            assert_byte_identical(&out, &baseline, &context);
            survived = Some(index);
            break;
        }
        drop(daemon); // SIGKILL whatever half-dead state remains

        // Restart with no fault plan: recovery must never panic or wedge.
        let mut daemon = Daemon::start(&dir, &serve_args, &[]);
        let statuses = daemon
            .request(r#"{"op": "status"}"#)
            .unwrap_or_else(|| panic!("recovered daemon must answer status ({context})"));
        assert!(statuses.contains("\"ok\": true"), "{context}: {statuses}");

        // An acked job must be recovered; an un-acked one may be
        // resurrected (its record hit disk before the crash) or absent.
        let recoverable = match &job {
            Some(job) => Some(job.clone()),
            None if statuses.contains("\"id\": \"j1\"") => Some("j1".to_string()),
            None => None,
        };
        if let Some(job) = recoverable {
            let lines = daemon
                .watch(&job)
                .unwrap_or_else(|| panic!("{context}: acked job {job} lost after restart"));
            let last = lines.last().unwrap();
            assert!(
                last.contains("\"state\": \"finished\""),
                "{context}: {last}"
            );
            let out = dir.join("state/jobs").join(&job).join("out");
            assert_byte_identical(&out, &baseline, &context);
        }
        assert!(
            daemon.try_shutdown(),
            "recovered daemon did not shut down cleanly ({context})"
        );
        fs::remove_dir_all(&dir).ok();
    }
    assert!(
        survived.is_some(),
        "fault sweep did not run past the last I/O op within {CAP} points"
    );
    fs::remove_dir_all(&base).ok();
}

#[test]
fn fault_matrix_kill_at_every_io_point() {
    fault_point_sweep("kill");
}

#[test]
fn fault_matrix_torn_write_at_every_io_point() {
    fault_point_sweep("torn");
}

/// ENOSPC on the very first I/O op (the job record) degrades gracefully: a
/// structured `io` error, no ghost job on disk, and the next submit works.
#[test]
fn enospc_is_reported_and_leaves_no_ghost_job() {
    let dir = temp_dir("enospc");
    let spec_path = write_spec(&dir, "spec.json", &quick_spec("enospc"));
    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[("SA_IO_FAULTS", "0=enospc")]);
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let rejected = daemon.request(&submit).unwrap();
    assert!(rejected.contains("\"ok\": false"), "{rejected}");
    assert!(rejected.contains("\"code\": \"io\""), "{rejected}");
    assert!(
        !dir.join("state/jobs/j1").exists(),
        "rejected submit left a job dir that a restart would resurrect"
    );
    // The daemon is still healthy; the next submit (ops 1..) succeeds.
    let accepted = daemon.request(&submit).unwrap();
    assert!(accepted.contains("\"ok\": true"), "{accepted}");
    let job = extract_job(&accepted);
    let lines = daemon.watch(&job).unwrap();
    assert!(
        lines.last().unwrap().contains("\"state\": \"finished\""),
        "{lines:?}"
    );
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// Oversized frames get a structured `too-large` error and the connection
/// stays usable; malformed JSON gets `bad-request`.
#[test]
fn oversized_and_malformed_frames_are_rejected_structurally() {
    let dir = temp_dir("frames");
    let mut daemon = Daemon::start(&dir, &["--max-frame-bytes", "1024"], &[]);
    let (mut reader, mut writer) = daemon.connect().unwrap();

    // An oversized line — far past the frame bound.
    let huge = format!(r#"{{"op": "submit", "spec": "{}"}}"#, "x".repeat(64 * 1024));
    writeln!(writer, "{huge}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"code\": \"too-large\""), "{line}");

    // Same connection, next frame: still served.
    writeln!(writer, r#"{{"op": "ping"}}"#).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\": true"), "{line}");

    // Malformed JSON inside the bound.
    writeln!(writer, "this is not json").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"code\": \"bad-request\""), "{line}");

    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// Admission control: with a bounded queue, a flood past the bound is shed
/// with `overloaded` + `retry_after_ms`; once the hog is cancelled the
/// queue admits again, and the daemon still drains cleanly afterwards.
#[test]
fn overload_is_shed_with_retry_after_and_recovers_on_drain() {
    let dir = temp_dir("overload");
    let spec_path = write_spec(&dir, "slow.json", &slow_spec("overload"));
    let mut daemon = Daemon::start(
        &dir,
        &[
            "--workers",
            "1",
            "--max-queued-units",
            "2",
            "--checkpoint-every",
            "100000",
        ],
        &[],
    );
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let first = daemon.request(&submit).unwrap();
    assert!(first.contains("\"ok\": true"), "{first}");
    let job = extract_job(&first);

    let shed = daemon.request(&submit).unwrap();
    assert!(shed.contains("\"ok\": false"), "{shed}");
    assert!(shed.contains("\"code\": \"overloaded\""), "{shed}");
    assert!(shed.contains("\"retry_after_ms\""), "{shed}");

    // Cancel the hog and wait for it to settle: the queue frees up and the
    // daemon admits work again.
    let cancelled = daemon.request(&format!(r#"{{"op": "cancel", "job": "{job}"}}"#));
    assert!(cancelled.unwrap().contains("\"ok\": true"));
    let lines = daemon.watch(&job).unwrap();
    assert!(
        lines.last().unwrap().contains("\"state\": \"cancelled\""),
        "{lines:?}"
    );
    let again = daemon.request(&submit).unwrap();
    assert!(again.contains("\"ok\": true"), "{again}");
    let job = extract_job(&again);
    let cancelled = daemon.request(&format!(r#"{{"op": "cancel", "job": "{job}"}}"#));
    assert!(cancelled.unwrap().contains("\"ok\": true"));
    // Clean drain after the shedding episode: every accepted job reaches a
    // terminal state and the daemon shuts down without wedging.
    assert!(daemon
        .request(r#"{"op": "drain"}"#)
        .unwrap()
        .contains("\"ok\": true"));
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// Per-client quotas on the wire: the noisy client is rejected with
/// `quota-exceeded`, the other client is still admitted.
#[test]
fn client_quota_rejects_only_the_noisy_client() {
    let dir = temp_dir("quota");
    let spec_path = write_spec(&dir, "slow.json", &slow_spec("quota"));
    let mut daemon = Daemon::start(
        &dir,
        &[
            "--workers",
            "1",
            "--client-quota",
            "3",
            "--checkpoint-every",
            "100000",
        ],
        &[],
    );
    let submit_as = |client: &str| {
        format!(
            r#"{{"op": "submit", "spec_path": "{}", "client": "{client}"}}"#,
            spec_path.display()
        )
    };
    // Two 2-unit jobs put the noisy client at 4 outstanding units > 3.
    let a = daemon.request(&submit_as("noisy")).unwrap();
    assert!(a.contains("\"ok\": true"), "{a}");
    let b = daemon.request(&submit_as("noisy")).unwrap();
    assert!(b.contains("\"code\": \"quota-exceeded\""), "{b}");
    let c = daemon.request(&submit_as("polite")).unwrap();
    assert!(c.contains("\"ok\": true"), "{c}");
    for job in [extract_job(&a), extract_job(&c)] {
        let response = daemon.request(&format!(r#"{{"op": "cancel", "job": "{job}"}}"#));
        assert!(response.unwrap().contains("\"ok\": true"));
    }
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// A connection that goes silent is disconnected by the idle deadline
/// instead of pinning a handler thread forever.
#[test]
fn idle_connections_are_disconnected() {
    let dir = temp_dir("idle");
    let mut daemon = Daemon::start(&dir, &["--idle-timeout-secs", "1"], &[]);
    let (mut reader, _writer) = daemon.connect().unwrap();
    let started = Instant::now();
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF from the idle disconnect, got: {line}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "idle disconnect took too long"
    );
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// The unit watchdog end to end: a stuck unit is cancelled at its next
/// checkpoint boundary and the job fails with an explanatory error instead
/// of hanging.
#[test]
fn unit_watchdog_fails_stuck_jobs() {
    let dir = temp_dir("watchdog");
    let spec_path = write_spec(&dir, "slow.json", &slow_spec("watchdog"));
    let mut daemon = Daemon::start(
        &dir,
        &[
            "--workers",
            "2",
            "--unit-timeout-secs",
            "1",
            "--checkpoint-every",
            "500",
        ],
        &[],
    );
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let job = extract_job(&daemon.request(&submit).unwrap());
    let lines = daemon.watch(&job).unwrap();
    let last = lines.last().unwrap();
    assert!(last.contains("\"state\": \"failed\""), "{last}");
    assert!(last.contains("wall-clock"), "{last}");
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// Corrupt state at restart is quarantined — never a panic, never a refusal
/// to start: a torn `job.json` quarantines that job's directory; a torn
/// `result.json` quarantines just the record and recomputes the job to an
/// identical result.
#[test]
fn corrupt_state_is_quarantined_at_restart() {
    let dir = temp_dir("quarantine");
    let spec_path = write_spec(&dir, "spec.json", &quick_spec("quarantine"));
    let baseline = batch_baseline(&dir, &spec_path);
    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let job_a = extract_job(&daemon.request(&submit).unwrap());
    let job_b = extract_job(&daemon.request(&submit).unwrap());
    daemon.watch(&job_a).unwrap();
    daemon.watch(&job_b).unwrap();
    daemon.shutdown();

    // Tear job A's manifest and job B's terminal record; drop in an alien
    // directory with no manifest at all.
    let jobs = dir.join("state/jobs");
    fs::write(jobs.join(&job_a).join("job.json"), "{\"torn").unwrap();
    fs::write(jobs.join(&job_b).join("result.json"), "").unwrap();
    fs::create_dir_all(jobs.join("debris")).unwrap();

    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    // Job A (torn manifest) is quarantined wholesale.
    let status_a = daemon
        .request(&format!(r#"{{"op": "status", "job": "{job_a}"}}"#))
        .unwrap();
    assert!(status_a.contains("\"code\": \"unknown-job\""), "{status_a}");
    assert!(dir.join("state/quarantine").join(&job_a).exists());
    assert!(dir.join("state/quarantine").join("debris").exists());
    // Job B (torn terminal record) is recomputed to an identical result.
    let lines = daemon.watch(&job_b).unwrap();
    assert!(
        lines.last().unwrap().contains("\"state\": \"finished\""),
        "{lines:?}"
    );
    assert_byte_identical(&jobs.join(&job_b).join("out"), &baseline, "recomputed job");
    assert!(
        jobs.join(&job_b).join("result.json.quarantined").exists(),
        "torn result record should be kept for post-mortems"
    );
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// `gc` retention: terminal job directories are pruned to the newest N;
/// after a restart the pruned jobs are gone while the kept one survives.
#[test]
fn gc_prunes_terminal_job_directories() {
    let dir = temp_dir("gc");
    let spec_path = write_spec(&dir, "spec.json", &quick_spec("gc"));
    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let mut jobs = Vec::new();
    for _ in 0..3 {
        let job = extract_job(&daemon.request(&submit).unwrap());
        daemon.watch(&job).unwrap();
        jobs.push(job);
    }
    // Prune via the CLI client (covers `sa gc` end to end).
    let output = Command::new(SA)
        .args(["gc", "--socket"])
        .arg(&daemon.socket)
        .args(["--keep", "1"])
        .output()
        .expect("run sa gc");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains(&jobs[0]) && stdout.contains(&jobs[1]),
        "{stdout}"
    );

    let jobs_root = dir.join("state/jobs");
    assert!(!jobs_root.join(&jobs[0]).exists());
    assert!(!jobs_root.join(&jobs[1]).exists());
    assert!(jobs_root.join(&jobs[2]).exists());
    daemon.shutdown();

    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let pruned = daemon
        .request(&format!(r#"{{"op": "status", "job": "{}"}}"#, jobs[0]))
        .unwrap();
    assert!(pruned.contains("\"code\": \"unknown-job\""), "{pruned}");
    let kept = daemon
        .request(&format!(r#"{{"op": "status", "job": "{}"}}"#, jobs[2]))
        .unwrap();
    assert!(kept.contains("\"state\": \"finished\""), "{kept}");
    // Ids never regress onto pruned ones.
    let next = extract_job(&daemon.request(&submit).unwrap());
    assert_eq!(next, "j4", "id counter must not reuse pruned ids");
    daemon.watch(&next).unwrap();
    daemon.shutdown();
    fs::remove_dir_all(&dir).ok();
}

/// The `watch --all` firehose: archived jobs replay as catch-up
/// `job-finished` lines, then live events stream as they happen.
#[test]
fn watch_all_streams_catch_up_then_live_events() {
    let dir = temp_dir("firehose");
    let spec_path = write_spec(&dir, "spec.json", &quick_spec("firehose"));
    let submit = format!(
        r#"{{"op": "submit", "spec_path": "{}"}}"#,
        spec_path.display()
    );
    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let archived = extract_job(&daemon.request(&submit).unwrap());
    daemon.watch(&archived).unwrap();
    daemon.shutdown();

    let mut daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let (mut reader, mut writer) = daemon.connect().unwrap();
    writeln!(writer, r#"{{"op": "watch", "all": true}}"#).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\": true"), "{line}");
    // Catch-up: the archived job's terminal status replays first.
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"event\": \"job-finished\""), "{line}");
    assert!(line.contains(&format!("\"{archived}\"")), "{line}");

    // A live submit streams its full event sequence on the same connection.
    let live = extract_job(&daemon.request(&submit).unwrap());
    let mut saw_unit_event = false;
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "stream ended early"
        );
        if line.contains("\"event\": \"unit-started\"") {
            saw_unit_event = true;
        }
        if line.contains("\"event\": \"job-finished\"") && line.contains(&format!("\"{live}\"")) {
            break;
        }
    }
    assert!(saw_unit_event, "firehose carried no unit-level events");
    daemon.shutdown();
    // Daemon shutdown ends the stream with EOF, not a hang.
    line.clear();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        line.clear();
    }
    fs::remove_dir_all(&dir).ok();
}
