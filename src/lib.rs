//! # stone-age-unison — umbrella crate
//!
//! Re-exports the whole workspace under short module names so the examples and
//! integration tests can use a single dependency:
//!
//! * [`model`] — the stone age execution model ([`sa_model`]),
//! * [`unison`] — AlgAU and the unison baselines ([`unison_core`]),
//! * [`protocols`] — the synchronous Restart / LE / MIS algorithms ([`sa_protocols`]),
//! * [`synchronizer`] — the Π → Π* transformer of Corollary 1.2 ([`sa_synchronizer`]),
//! * [`bio`] — fault-tolerant biological network scenarios ([`bio_networks`]).

#![forbid(unsafe_code)]

pub use bio_networks as bio;
pub use sa_model as model;
pub use sa_protocols as protocols;
pub use sa_synchronizer as synchronizer;
pub use unison_core as unison;
