//! Property-based tests (proptest) over the core data structures and invariants:
//! the level algebra, the AlgAU step invariants of Section 2.3.1, the Restart module
//! guarantee and the MIS membership checker.

use proptest::prelude::*;
use stone_age_unison::model::algorithm::StateSpace;
use stone_age_unison::model::prelude::*;
use stone_age_unison::protocols::mis::MisChecker;
use stone_age_unison::protocols::restart::{
    measure_restart_exit, RestartState, TrivialHost, WithRestart,
};
use stone_age_unison::unison::invariants::{check_protected_arc, check_step_invariants};
use stone_age_unison::unison::{AlgAu, CyclicSafety, Levels, Turn};

/// Strategy: a connected random graph on `n` nodes built from a random spanning tree
/// plus random extra edges.
fn connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n, any::<u64>(), 0.0f64..0.5).prop_map(|(n, seed, extra)| {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Graph::empty(n);
        for v in 1..n {
            let parent = rng.gen_range(0..v);
            g.add_edge(parent, v);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) && rng.gen_bool(extra) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    })
}

/// Strategy: a valid AlgAU turn for level bound `k`.
fn turn_strategy(k: i32) -> impl Strategy<Value = Turn> {
    (1..=k, prop::bool::ANY, prop::bool::ANY).prop_map(|(mag, negative, faulty)| {
        let level = if negative { -mag } else { mag };
        if faulty && mag >= 2 {
            Turn::Faulty(level)
        } else {
            Turn::Able(level)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_backward_roundtrip(k in 2i32..40, mag in 1i32..40, neg in any::<bool>()) {
        let levels = Levels::new(k);
        let mag = mag.min(k);
        let level = if neg { -mag } else { mag };
        prop_assert_eq!(levels.backward(levels.forward(level)), level);
        prop_assert_eq!(levels.forward(levels.backward(level)), level);
        // forward always moves clock by exactly one
        let c = levels.clock_value(level);
        let c2 = levels.clock_value(levels.forward(level));
        prop_assert_eq!((c + 1) % levels.count() as u32, c2);
    }

    #[test]
    fn level_distance_is_a_metric(k in 2i32..20, a in 1i32..20, b in 1i32..20, c in 1i32..20,
                                  sa in any::<bool>(), sb in any::<bool>(), sc in any::<bool>()) {
        let levels = Levels::new(k);
        let fix = |mag: i32, neg: bool| {
            let m = ((mag - 1) % k) + 1;
            if neg { -m } else { m }
        };
        let (a, b, c) = (fix(a, sa), fix(b, sb), fix(c, sc));
        prop_assert_eq!(levels.distance(a, a), 0);
        prop_assert_eq!(levels.distance(a, b), levels.distance(b, a));
        prop_assert!(levels.distance(a, c) <= levels.distance(a, b) + levels.distance(b, c));
        prop_assert!(levels.distance(a, b) <= k as u32);
    }

    #[test]
    fn cyclic_safety_matches_level_adjacency(k in 2i32..20, a in 1i32..20, b in 1i32..20,
                                             sa in any::<bool>(), sb in any::<bool>()) {
        let levels = Levels::new(k);
        let fix = |mag: i32, neg: bool| {
            let m = ((mag - 1) % k) + 1;
            if neg { -m } else { m }
        };
        let (a, b) = (fix(a, sa), fix(b, sb));
        let safety = CyclicSafety::new(levels.count() as u32);
        prop_assert_eq!(
            safety.safe(levels.clock_value(a), levels.clock_value(b)),
            levels.adjacent(a, b)
        );
    }

    #[test]
    fn algau_step_invariants_hold_on_random_executions(
        graph in connected_graph(8),
        d in 1usize..4,
        seed in any::<u64>(),
        steps in 20usize..120,
    ) {
        let alg = AlgAu::new(d);
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut runner_rng = rand::rngs::StdRng::seed_from_u64(seed);
        // random initial configuration
        let states = alg.states();
        let init: Vec<Turn> = (0..graph.node_count())
            .map(|_| states[runner_rng.gen_range(0..states.len())])
            .collect();
        let mut exec = Execution::new(&alg, &graph, init, seed);
        let mut sched = UniformRandomScheduler::new(0.5);
        for _ in 0..steps {
            let before = exec.configuration().to_vec();
            exec.step_with(&mut sched);
            let after = exec.configuration().to_vec();
            let violations = check_step_invariants(&alg, &graph, &before, &after);
            prop_assert!(violations.is_empty(), "{violations:?}");
            prop_assert!(check_protected_arc(&alg, &graph, &after).is_none());
        }
    }

    #[test]
    fn algau_output_clocks_are_a_bijection_with_able_turns(d in 1usize..10) {
        let alg = AlgAu::new(d);
        let outputs = alg.output_states();
        let mut clocks: Vec<u32> = outputs
            .iter()
            .map(|t| stone_age_unison::model::algorithm::Algorithm::output(&alg, t).unwrap())
            .collect();
        clocks.sort_unstable();
        clocks.dedup();
        prop_assert_eq!(clocks.len(), alg.clock_size() as usize);
    }

    #[test]
    fn restart_always_exits_concurrently(
        graph in connected_graph(7),
        seed in any::<u64>(),
        turn_seed in any::<u64>(),
    ) {
        let d = graph.diameter().max(1);
        let wrapper = WithRestart::new(TrivialHost::new(4), d);
        let exit = wrapper.exit_index();
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(turn_seed);
        let mut init: Vec<RestartState<u32>> = (0..graph.node_count())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    RestartState::Restart(rng.gen_range(0..=exit))
                } else {
                    RestartState::Host(rng.gen_range(0..4))
                }
            })
            .collect();
        init[0] = RestartState::Restart(rng.gen_range(0..=exit));
        let report = measure_restart_exit(&wrapper, &graph, init, seed, (4 * d + 12) as u64)
            .expect("Restart must terminate within O(D) rounds");
        prop_assert!(report.concurrent);
        prop_assert!(report.uniform_exit);
        prop_assert!(report.exit_round <= (3 * d + 2) as u64);
    }

    #[test]
    fn mis_membership_checker_agrees_with_definition(
        graph in connected_graph(7),
        bits in prop::collection::vec(any::<bool>(), 7),
    ) {
        let n = graph.node_count();
        let membership: Vec<bool> = bits.into_iter().take(n).chain(std::iter::repeat(false)).take(n).collect();
        let violations = MisChecker::check_membership(&graph, &membership);
        // brute-force the definition
        let independent = graph
            .edges()
            .iter()
            .all(|&(u, v)| !(membership[u] && membership[v]));
        let maximal = graph.nodes().all(|v| {
            membership[v] || graph.neighbors(v).iter().any(|&u| membership[u])
        });
        prop_assert_eq!(violations.is_empty(), independent && maximal);
    }

    #[test]
    fn turn_strategy_only_yields_valid_turns(t in turn_strategy(8)) {
        let levels = Levels::new(8);
        prop_assert!(t.is_valid(&levels));
    }
}
