//! Property-based tests over the core data structures and invariants: the
//! level algebra, the AlgAU step invariants of Section 2.3.1, the Restart
//! module guarantee, the MIS membership checker, and the equivalence of the
//! dense (bitmask + incremental sensing) and sparse (`BTreeSet`) signal
//! engines.
//!
//! The build environment has no access to crates.io (so no `proptest`); the
//! tests below draw their random cases from a seeded [`rand::rngs::StdRng`]
//! instead — same idea, deterministic across runs, zero dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stone_age_unison::model::algorithm::StateSpace;
use stone_age_unison::model::prelude::*;
use stone_age_unison::protocols::mis::MisChecker;
use stone_age_unison::protocols::restart::{
    measure_restart_exit, RestartState, TrivialHost, WithRestart,
};
use stone_age_unison::protocols::{alg_le, alg_mis};
use stone_age_unison::unison::invariants::{check_protected_arc, check_step_invariants};
use stone_age_unison::unison::{AlgAu, CyclicSafety, Levels, Turn};

/// Number of random cases per property.
const CASES: u64 = 64;

/// A connected random graph on `2..=max_n` nodes: a random spanning tree plus
/// random extra edges.
fn connected_graph(rng: &mut StdRng, max_n: usize) -> Graph {
    let n = rng.gen_range(2..=max_n);
    let extra = rng.gen_range(0.0..0.5);
    let mut g = Graph::empty(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(parent, v);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) && rng.gen_bool(extra) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A uniformly random valid AlgAU turn for level bound `k`.
fn random_turn(rng: &mut StdRng, k: i32) -> Turn {
    let mag = rng.gen_range(1..=k);
    let level = if rng.gen_bool(0.5) { -mag } else { mag };
    if rng.gen_bool(0.5) && mag >= 2 {
        Turn::Faulty(level)
    } else {
        Turn::Able(level)
    }
}

#[test]
fn forward_backward_roundtrip() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let k = rng.gen_range(2..40i32);
        let levels = Levels::new(k);
        let mag = rng.gen_range(1..=k);
        let level = if rng.gen_bool(0.5) { -mag } else { mag };
        assert_eq!(levels.backward(levels.forward(level)), level);
        assert_eq!(levels.forward(levels.backward(level)), level);
        // forward always moves the clock by exactly one
        let c = levels.clock_value(level);
        let c2 = levels.clock_value(levels.forward(level));
        assert_eq!((c + 1) % levels.count() as u32, c2);
    }
}

#[test]
fn level_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let k = rng.gen_range(2..20i32);
        let levels = Levels::new(k);
        let draw = |rng: &mut StdRng| {
            let mag = rng.gen_range(1..=k);
            if rng.gen_bool(0.5) {
                -mag
            } else {
                mag
            }
        };
        let (a, b, c) = (draw(&mut rng), draw(&mut rng), draw(&mut rng));
        assert_eq!(levels.distance(a, a), 0);
        assert_eq!(levels.distance(a, b), levels.distance(b, a));
        assert!(levels.distance(a, c) <= levels.distance(a, b) + levels.distance(b, c));
        assert!(levels.distance(a, b) <= k as u32);
    }
}

#[test]
fn cyclic_safety_matches_level_adjacency() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..CASES {
        let k = rng.gen_range(2..20i32);
        let levels = Levels::new(k);
        let draw = |rng: &mut StdRng| {
            let mag = rng.gen_range(1..=k);
            if rng.gen_bool(0.5) {
                -mag
            } else {
                mag
            }
        };
        let (a, b) = (draw(&mut rng), draw(&mut rng));
        let safety = CyclicSafety::new(levels.count() as u32);
        assert_eq!(
            safety.safe(levels.clock_value(a), levels.clock_value(b)),
            levels.adjacent(a, b)
        );
    }
}

#[test]
fn algau_step_invariants_hold_on_random_executions() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let graph = connected_graph(&mut rng, 8);
        let d = rng.gen_range(1..4usize);
        let seed = rng.gen_range(0..u64::MAX / 2);
        let steps = rng.gen_range(20..120usize);
        let alg = AlgAu::new(d);
        let states = alg.states();
        let init: Vec<Turn> = (0..graph.node_count())
            .map(|_| states[rng.gen_range(0..states.len())])
            .collect();
        let mut exec = Execution::new(&alg, &graph, init, seed);
        let mut sched = UniformRandomScheduler::new(0.5);
        for _ in 0..steps {
            let before = exec.configuration().to_vec();
            exec.step_with(&mut sched);
            let after = exec.configuration().to_vec();
            let violations = check_step_invariants(&alg, &graph, &before, &after);
            assert!(violations.is_empty(), "{violations:?}");
            assert!(check_protected_arc(&alg, &graph, &after).is_none());
        }
    }
}

#[test]
fn algau_output_clocks_are_a_bijection_with_able_turns() {
    for d in 1..10usize {
        let alg = AlgAu::new(d);
        let outputs = alg.output_states();
        let mut clocks: Vec<u32> = outputs
            .iter()
            .map(|t| stone_age_unison::model::algorithm::Algorithm::output(&alg, t).unwrap())
            .collect();
        clocks.sort_unstable();
        clocks.dedup();
        assert_eq!(clocks.len(), alg.clock_size() as usize);
    }
}

#[test]
fn restart_always_exits_concurrently() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let graph = connected_graph(&mut rng, 7);
        let seed = rng.gen_range(0..u64::MAX / 2);
        let d = graph.diameter().max(1);
        let wrapper = WithRestart::new(TrivialHost::new(4), d);
        let exit = wrapper.exit_index();
        let mut init: Vec<RestartState<u32>> = (0..graph.node_count())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    RestartState::Restart(rng.gen_range(0..=exit))
                } else {
                    RestartState::Host(rng.gen_range(0..4))
                }
            })
            .collect();
        init[0] = RestartState::Restart(rng.gen_range(0..=exit));
        let report = measure_restart_exit(&wrapper, &graph, init, seed, (4 * d + 12) as u64)
            .expect("Restart must terminate within O(D) rounds");
        assert!(report.concurrent);
        assert!(report.uniform_exit);
        assert!(report.exit_round <= (3 * d + 2) as u64);
    }
}

#[test]
fn mis_membership_checker_agrees_with_definition() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let graph = connected_graph(&mut rng, 7);
        let n = graph.node_count();
        let membership: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let violations = MisChecker::check_membership(&graph, &membership);
        // brute-force the definition
        let independent = graph
            .edges()
            .iter()
            .all(|&(u, v)| !(membership[u] && membership[v]));
        let maximal = graph
            .nodes()
            .all(|v| membership[v] || graph.neighbors(v).iter().any(|&u| membership[u]));
        assert_eq!(violations.is_empty(), independent && maximal);
    }
}

#[test]
fn random_turns_are_always_valid() {
    let mut rng = StdRng::seed_from_u64(107);
    let levels = Levels::new(8);
    for _ in 0..CASES {
        let t = random_turn(&mut rng, 8);
        assert!(t.is_valid(&levels));
    }
}

// ---- dense / sparse signal-engine equivalence ---------------------------------

/// Steps a dense and a sparse execution of the same algorithm in lockstep and
/// asserts they stay bit-for-bit identical — configurations, step outcomes,
/// per-node signals and incremental sensing state.
fn assert_engines_agree<A>(
    algorithm: &A,
    graph: &Graph,
    init: Vec<A::State>,
    seed: u64,
    steps: usize,
    p: f64,
) where
    A: stone_age_unison::model::algorithm::Algorithm,
{
    let mut dense = ExecutionBuilder::new(algorithm, graph)
        .seed(seed)
        .initial(init.clone());
    let mut sparse = ExecutionBuilder::new(algorithm, graph)
        .seed(seed)
        .signal_mode(SignalMode::Sparse)
        .initial(init);
    assert!(
        dense.uses_dense_signals(),
        "algorithm must enumerate its state space for this test"
    );
    assert!(!sparse.uses_dense_signals());
    let mut sched_a = UniformRandomScheduler::new(p);
    let mut sched_b = UniformRandomScheduler::new(p);
    for step in 0..steps {
        let a = dense.step_with(&mut sched_a);
        let b = sparse.step_with(&mut sched_b);
        assert_eq!(a, b, "step {step} outcome diverged");
        assert_eq!(
            dense.configuration(),
            sparse.configuration(),
            "step {step} configuration diverged"
        );
        if a.round_completed {
            for v in graph.nodes() {
                assert_eq!(dense.signal(v), sparse.signal(v), "signal of node {v}");
            }
            assert!(dense.validate_incremental_sensing(), "step {step}");
        }
    }
}

#[test]
fn dense_and_sparse_signals_agree_on_random_algau_executions() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..24 {
        let graph = connected_graph(&mut rng, 8);
        let d = rng.gen_range(1..4usize);
        let alg = AlgAu::new(d);
        let states = alg.states();
        let init: Vec<Turn> = (0..graph.node_count())
            .map(|_| states[rng.gen_range(0..states.len())])
            .collect();
        let seed = rng.gen_range(0..u64::MAX / 2);
        assert_engines_agree(&alg, &graph, init, seed, 80, 0.5);
    }
}

#[test]
fn dense_and_sparse_engines_agree_for_randomized_algorithms() {
    // AlgMIS and AlgLE toss coins: equivalence here also proves the dense
    // engine preserves the RNG stream (transitions are evaluated exactly once
    // per activation, in the same order, with no memoization).
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..8 {
        let graph = connected_graph(&mut rng, 6);
        let d = graph.diameter().max(1);
        let seed = rng.gen_range(0..u64::MAX / 2);
        let mis = alg_mis(d);
        let palette = mis.states();
        let init = (0..graph.node_count())
            .map(|_| palette[rng.gen_range(0..palette.len())])
            .collect();
        assert_engines_agree(&mis, &graph, init, seed, 60, 0.7);
        let le = alg_le(d);
        let palette = le.states();
        let init = (0..graph.node_count())
            .map(|_| palette[rng.gen_range(0..palette.len())])
            .collect();
        assert_engines_agree(&le, &graph, init, seed ^ 0xabcd, 60, 0.7);
    }
}

#[test]
fn incremental_counts_match_recomputation_after_fault_injection() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..16 {
        let graph = connected_graph(&mut rng, 8);
        let d = rng.gen_range(1..4usize);
        let alg = AlgAu::new(d);
        let palette = alg.states();
        let seed = rng.gen_range(0..u64::MAX / 2);
        let mut exec = ExecutionBuilder::new(&alg, &graph)
            .seed(seed)
            .random_initial(&palette);
        assert!(exec.uses_dense_signals());
        let mut sched = UniformRandomScheduler::new(0.5);
        let mut injector = FaultInjector::new(
            FaultPlan::Periodic {
                period: 2,
                count: 2,
            },
            palette.clone(),
            seed ^ 0x5eed,
        );
        for _ in 0..60 {
            let out = exec.step_with(&mut sched);
            if out.round_completed {
                injector.on_round(&mut exec);
                assert!(
                    exec.validate_incremental_sensing(),
                    "incremental counts diverged from a from-scratch recomputation \
                     after fault injection"
                );
            }
        }
        assert!(injector.faults_injected() > 0);
    }
}

#[test]
fn corrupting_outside_the_state_space_keeps_executions_equivalent() {
    // A fault writing a state outside the enumerated space degrades the dense
    // engine to sparse; behaviour must be unchanged either way.
    use rand::RngCore;
    use stone_age_unison::model::algorithm::Algorithm;

    /// Infection toy whose declared space {0, 1} can be escaped by faults.
    struct Spread;
    impl Algorithm for Spread {
        type State = u8;
        type Output = u8;
        fn output(&self, s: &u8) -> Option<u8> {
            Some(*s)
        }
        fn transition(&self, s: &u8, sig: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
            if *s == 1 || sig.senses(&1) {
                1
            } else {
                *s
            }
        }
        fn dense_state_space(&self) -> Option<Vec<u8>> {
            Some(vec![0, 1])
        }
        fn transition_is_deterministic(&self) -> bool {
            true
        }
    }

    let mut rng = StdRng::seed_from_u64(111);
    for _ in 0..12 {
        let graph = connected_graph(&mut rng, 6);
        let seed = rng.gen_range(0..u64::MAX / 2);
        let init: Vec<u8> = (0..graph.node_count())
            .map(|_| u8::from(rng.gen_bool(0.3)))
            .collect();
        let mut dense = ExecutionBuilder::new(&Spread, &graph)
            .seed(seed)
            .initial(init.clone());
        let mut sparse = ExecutionBuilder::new(&Spread, &graph)
            .seed(seed)
            .signal_mode(SignalMode::Sparse)
            .initial(init);
        let mut sched_a = UniformRandomScheduler::new(0.5);
        let mut sched_b = UniformRandomScheduler::new(0.5);
        for step in 0..40 {
            if step == 10 {
                // 7 is outside the declared {0, 1} space
                dense.corrupt(0, 7);
                sparse.corrupt(0, 7);
                assert!(!dense.uses_dense_signals(), "foreign state must degrade");
            }
            dense.step_with(&mut sched_a);
            sparse.step_with(&mut sched_b);
            assert_eq!(dense.configuration(), sparse.configuration(), "step {step}");
        }
    }
}
