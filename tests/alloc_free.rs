//! Asserts the headline property of the dense execution engine: once warm,
//! the synchronous (and round-robin) step loop performs **zero heap
//! allocations** — signals are bitmask copies, activation sets and update
//! buffers are reused, and the transition memo rewrites its slots in place.
//! The property holds on **both step engines**: the sharded engine's only
//! allocations are its one-time pool spawn and the shard buffers' growth to
//! steady-state capacity, all during construction/warm-up.
//!
//! Measured with a counting global allocator. This file deliberately contains
//! a single `#[test]`: the counter is process-global, so concurrent tests in
//! the same binary would pollute it. (The sharded engine's *parked* workers
//! perform no allocation between broadcasts, so they do not pollute the
//! serial sections either.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stone_age_unison::model::algorithm::StateSpace;
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::EngineKind;
use stone_age_unison::unison::{AlgAu, Turn};

mod common;
use common::{Cycler, Promote};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_step_loop_allocates_nothing() {
    let graph = Topology::Torus { rows: 16, cols: 16 }.build_deterministic();
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();

    // --- synchronous scheduler, adversarial (non-uniform) start -------------
    // A random initial configuration keeps the general dense path busy (the
    // uniform-configuration fast path only takes over once the field
    // synchronizes).
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(42)
        .random_initial(&palette);
    assert!(
        exec.uses_dense_signals(),
        "AlgAU must run on the dense engine"
    );
    let mut sched = SynchronousScheduler;
    // Warm up: buffers grow to steady-state capacity, the memo ring fills.
    for _ in 0..50 {
        exec.step_with(&mut sched);
    }
    let before = allocations();
    for _ in 0..200 {
        exec.step_with(&mut sched);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "synchronous steps must not allocate once warm"
    );

    // --- synchronous scheduler, synchronized (uniform) start ----------------
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(7)
        .uniform(Turn::Able(1));
    let mut sched = SynchronousScheduler;
    for _ in 0..10 {
        exec.step_with(&mut sched);
    }
    let before = allocations();
    for _ in 0..200 {
        exec.step_with(&mut sched);
    }
    assert_eq!(
        allocations() - before,
        0,
        "uniform lockstep steps must not allocate"
    );

    // --- round-robin scheduler ----------------------------------------------
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(3)
        .random_initial(&palette);
    let mut sched = RoundRobinScheduler::default();
    for _ in 0..(2 * graph.node_count()) {
        exec.step_with(&mut sched);
    }
    let before = allocations();
    for _ in 0..(4 * graph.node_count()) {
        exec.step_with(&mut sched);
    }
    assert_eq!(
        allocations() - before,
        0,
        "round-robin steps must not allocate once warm"
    );

    // --- sharded engine, adversarial start ----------------------------------
    // Pool threads, shard buffers and per-lane scratch signals/memos are all
    // allocated during construction and the warm-up steps; the warm broadcast
    // loop itself (condvar wakeups + epoch bumps + buffer reuse) must be
    // allocation-free, like the serial engine's.
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(42)
        .engine(EngineKind::Sharded { threads: 4 })
        .random_initial(&palette);
    assert!(exec.uses_dense_signals());
    assert_eq!(exec.engine_kind(), EngineKind::Sharded { threads: 4 });
    let mut sched = SynchronousScheduler;
    for _ in 0..50 {
        exec.step_with(&mut sched);
    }
    let before = allocations();
    for _ in 0..200 {
        exec.step_with(&mut sched);
    }
    assert_eq!(
        allocations() - before,
        0,
        "sharded synchronous steps must not allocate once warm"
    );

    // --- sharded engine, synchronized (uniform) start -----------------------
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(7)
        .engine(EngineKind::Sharded { threads: 4 })
        .uniform(Turn::Able(1));
    let mut sched = SynchronousScheduler;
    for _ in 0..10 {
        exec.step_with(&mut sched);
    }
    let before = allocations();
    for _ in 0..200 {
        exec.step_with(&mut sched);
    }
    assert_eq!(
        allocations() - before,
        0,
        "sharded uniform lockstep steps must not allocate"
    );

    // --- sharded apply stage (changed sets above the sharding threshold) ----
    // Every Cycler step changes all 2048 nodes, so the sharded engine fans
    // the apply stage's count updates across the pool; the per-step shard
    // slots are stack-allocated, so the warm loop must stay at zero.
    {
        use stone_age_unison::model::engine::SHARDED_APPLY_MIN_CHANGED;
        let graph = Topology::RandomRegular { n: 2048, deg: 5 }.build(23);
        assert!(graph.node_count() >= 2 * SHARDED_APPLY_MIN_CHANGED);
        let init: Vec<u8> = (0..graph.node_count())
            .map(|v| ((v * 13 + 4) % 6) as u8)
            .collect();
        let mut exec = ExecutionBuilder::new(&Cycler, &graph)
            .seed(1)
            .engine(EngineKind::Sharded { threads: 4 })
            .initial(init);
        assert!(exec.uses_dense_signals());
        let mut sched = SynchronousScheduler;
        for _ in 0..5 {
            exec.step_with(&mut sched);
        }
        let before = allocations();
        for _ in 0..60 {
            exec.step_with(&mut sched);
        }
        assert_eq!(
            allocations() - before,
            0,
            "sharded-apply steps must not allocate once warm"
        );
    }

    // --- partial-batch apply -------------------------------------------------
    // Re-seeding zeros through `corrupt` makes every step a near-uniform
    // batch (all zeros move to one, the ones hold): the bulk word-write
    // commit must be allocation-free too.
    {
        let graph = Topology::Torus { rows: 16, cols: 16 }.build_deterministic();
        let n = graph.node_count();
        let init: Vec<u8> = (0..n).map(|v| (v % 2 == 0) as u8).collect();
        let mut exec = ExecutionBuilder::new(&Promote, &graph)
            .seed(2)
            .initial(init);
        let all: Vec<usize> = (0..n).collect();
        let movers: Vec<usize> = (0..n).step_by(2).collect();
        let batch_round = |exec: &mut Execution<'_, Promote>| {
            for &v in &movers {
                exec.corrupt(v, 0);
            }
            exec.step(&all);
        };
        for _ in 0..3 {
            batch_round(&mut exec);
        }
        let before = allocations();
        for _ in 0..50 {
            batch_round(&mut exec);
        }
        assert_eq!(
            allocations() - before,
            0,
            "partial-batch steps must not allocate once warm"
        );
        assert!(exec.validate_incremental_sensing());
    }

    // --- closed-neighborhood buffer reuse ------------------------------------
    // `closed_neighborhood_into` clears and refills a caller-owned buffer;
    // after one warming call per distinct degree, a scan over every node must
    // not allocate (the CSR adjacency itself is two flat arrays).
    {
        let graph = Topology::Torus { rows: 16, cols: 16 }.build_deterministic();
        let mut buf = Vec::new();
        graph.closed_neighborhood_into(0, &mut buf);
        let before = allocations();
        for v in 0..graph.node_count() {
            graph.closed_neighborhood_into(v, &mut buf);
            assert_eq!(buf.len(), graph.degree(v) + 1);
        }
        assert_eq!(
            allocations() - before,
            0,
            "closed-neighborhood scans must reuse the buffer"
        );
    }

    // --- active-set (dirty-frontier) execution -------------------------------
    // The frontier is a preallocated bitset; its per-step maintenance (clear
    // unchanged, re-mark changed closed neighborhoods) walks CSR slices, so
    // the warm active-set loop must stay allocation-free like the full scan.
    {
        let graph = Topology::Torus { rows: 16, cols: 16 }.build_deterministic();
        let d = graph.diameter();
        let alg = AlgAu::new(d);
        let palette = alg.states();
        let mut exec = ExecutionBuilder::new(&alg, &graph)
            .seed(42)
            .active_set(true)
            .random_initial(&palette);
        assert!(exec.uses_active_set());
        let mut sched = SynchronousScheduler;
        for _ in 0..50 {
            exec.step_with(&mut sched);
        }
        let before = allocations();
        for _ in 0..200 {
            exec.step_with(&mut sched);
        }
        assert_eq!(
            allocations() - before,
            0,
            "active-set steps must not allocate once warm"
        );
    }

    // Sanity: the counter actually counts.
    let before = allocations();
    let v: Vec<u64> = Vec::with_capacity(256);
    drop(v);
    assert!(allocations() > before, "allocator instrumentation is live");
}
