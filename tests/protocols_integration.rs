//! Cross-crate integration tests for the synchronous protocols (Restart, AlgMIS,
//! AlgLE) and their asynchronous counterparts obtained through the synchronizer.

use stone_age_unison::model::algorithm::StateSpace;
use stone_age_unison::model::checker::measure_static_stabilization;
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::topology::Topology;
use stone_age_unison::protocols::le::LeChecker;
use stone_age_unison::protocols::mis::{Decision, MisChecker};
use stone_age_unison::protocols::restart::RestartState;
use stone_age_unison::protocols::{alg_le, alg_mis};
use stone_age_unison::synchronizer::{async_le, async_mis, random_composite_configuration};

fn protocol_families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("complete", Graph::complete(8)),
        ("star", Graph::star(9)),
        ("cycle", Graph::cycle(8)),
        ("grid", Graph::grid(3, 4)),
        (
            "tree",
            Topology::BalancedTree { arity: 3, depth: 2 }.build_deterministic(),
        ),
        ("gnp", Topology::ErdosRenyi { n: 12, p: 0.4 }.build(seed)),
    ]
}

#[test]
fn mis_is_correct_and_stable_on_every_family_from_adversarial_starts() {
    for (name, graph) in protocol_families(7) {
        let d = graph.diameter();
        let alg = alg_mis(d);
        let palette = alg.states();
        for seed in 0..2u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&palette);
            let mut sched = SynchronousScheduler;
            let report =
                measure_static_stabilization(&mut exec, &mut sched, &MisChecker, 4_000, 150);
            assert!(
                report.stabilization_round.is_some(),
                "{name} (seed {seed}): {report:?}"
            );
            // double-check the final configuration is a genuine MIS
            let membership: Vec<bool> = exec
                .configuration()
                .iter()
                .map(|s| match s {
                    RestartState::Host(h) => h.decision == Decision::In,
                    RestartState::Restart(_) => false,
                })
                .collect();
            assert!(
                MisChecker::check_membership(&graph, &membership).is_empty(),
                "{name} (seed {seed}) final membership invalid"
            );
        }
    }
}

#[test]
fn le_elects_exactly_one_leader_on_every_family_from_adversarial_starts() {
    for (name, graph) in protocol_families(9) {
        let d = graph.diameter();
        let alg = alg_le(d);
        let palette = alg.states();
        for seed in 0..2u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&palette);
            let mut sched = SynchronousScheduler;
            let report =
                measure_static_stabilization(&mut exec, &mut sched, &LeChecker, 6_000, 200);
            assert!(
                report.stabilization_round.is_some(),
                "{name} (seed {seed}): {report:?}"
            );
        }
    }
}

#[test]
fn protocol_state_spaces_grow_linearly_with_d() {
    // Theorem 1.3 / 1.4: O(D) states. Check the growth is affine in D.
    let mis_counts: Vec<usize> = [2usize, 4, 8, 16]
        .iter()
        .map(|&d| alg_mis(d).state_count())
        .collect();
    let le_counts: Vec<usize> = [2usize, 4, 8, 16]
        .iter()
        .map(|&d| alg_le(d).state_count())
        .collect();
    for counts in [&mis_counts, &le_counts] {
        let d1 = counts[1] as i64 - counts[0] as i64; // growth over +2
        let d2 = counts[2] as i64 - counts[1] as i64; // growth over +4
        let d3 = counts[3] as i64 - counts[2] as i64; // growth over +8
        assert_eq!(d2, 2 * d1, "{counts:?}");
        assert_eq!(d3, 4 * d1, "{counts:?}");
    }
}

#[test]
fn corollary_1_2_state_space_formula_holds() {
    for d in [1usize, 2, 4] {
        let inner = alg_mis(d);
        let composite = async_mis(d);
        let k = 3 * d + 2;
        assert_eq!(
            composite.state_space_size(),
            inner.state_count() * inner.state_count() * (4 * k - 2)
        );
    }
}

#[test]
fn async_mis_stabilizes_from_fully_random_composite_configurations() {
    let graph = Graph::complete(5);
    let d = graph.diameter();
    let alg = async_mis(d);
    let checker = alg.checker();
    let inner_palette = alg.inner().states();
    for seed in 0..2u64 {
        let init =
            random_composite_configuration(&inner_palette, alg.unison(), graph.node_count(), seed);
        let mut exec = Execution::new(&alg, &graph, init, seed);
        let mut sched = UniformRandomScheduler::new(0.6);
        let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 30_000, 300);
        assert!(
            report.stabilization_round.is_some(),
            "seed {seed}: {report:?}"
        );
    }
}

#[test]
fn async_le_stabilizes_under_central_daemon() {
    let graph = Graph::star(6);
    let d = graph.diameter();
    let alg = async_le(d);
    let checker = alg.checker();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(4)
        .uniform(alg.fresh_state());
    let mut sched = CentralScheduler;
    let report = measure_static_stabilization(&mut exec, &mut sched, &checker, 60_000, 300);
    assert!(report.stabilization_round.is_some(), "{report:?}");
}

#[test]
fn bio_scenarios_remain_functional_under_all_harshness_levels() {
    use stone_age_unison::bio::{pulse_unison_recovery, Harshness, PulseScenario};
    let scenario = PulseScenario::new(3, 4);
    for h in [Harshness::Mild, Harshness::Moderate, Harshness::Severe] {
        let stats = pulse_unison_recovery(&scenario, h, 2, 5);
        assert!(stats.fully_recovered(), "{h:?}: {stats:?}");
    }
}
