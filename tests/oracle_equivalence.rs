//! Incremental ≡ full-scan legitimacy oracle equivalence.
//!
//! The incremental legitimacy layer (`sa_model::oracle::LegitimacyTracker`)
//! replaces the per-round full configuration scan with O(changed·deg) bitset
//! maintenance fed from the executor's dirty frontier. Its contract is that
//! the *verdicts are bit-identical* to the full scan — stabilization rounds,
//! violation lists, final configurations, everything. These tests pin that
//! contract in-process by wrapping the decomposing oracles/checkers in
//! wrappers that hide the decomposition (inheriting the default
//! `as_local() = None` / `snapshot_as_local() = None`), forcing the legacy
//! full-scan path, and comparing runs across all six scheduler families,
//! dense and sparse graphs, both step engines and fault injection. The CI
//! `SA_FORCE_FULL_ORACLE=1` legs re-check the same equivalence end-to-end
//! through the environment escape hatch.
//!
//! Also covered here: the sweep runner's verification windows under faults
//! that break legitimacy *mid-window* (kill/resume must reseed the tracker's
//! bad-set and still finish bit-identical), the violation-recording cap, and
//! the per-node decompositions of the biological composite predicates.

use stone_age_unison::model::checker::{
    measure_stabilization, measure_static_stabilization, violations_capped, MAX_RECORDED_VIOLATIONS,
};
use stone_age_unison::model::executor::StabilizationOutcome;
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::EngineKind;
use stone_age_unison::unison::baseline::min_plus_one::min_plus_one_legitimate;
use stone_age_unison::unison::baseline::{MinPlusOne, MinPlusOneChecker, MinPlusOneOracle};
use stone_age_unison::unison::{AlgAu, AuChecker, GoodGraphOracle};

mod common;

/// Hides an oracle's per-node decomposition: delegates `is_legitimate` and
/// inherits the default `as_local() = None`, so every round check runs the
/// full scan. Running the same seeded execution against the wrapped and the
/// unwrapped oracle compares the two code paths end to end.
struct FullScanOracle<O>(O);

impl<A: Algorithm, O: LegitimacyOracle<A>> LegitimacyOracle<A> for FullScanOracle<O> {
    fn is_legitimate(&self, graph: &Graph, config: &[A::State]) -> bool {
        self.0.is_legitimate(graph, config)
    }
}

/// Hides a checker's snapshot decomposition (`snapshot_as_local() = None`),
/// forcing the per-round full snapshot scan during verification windows.
struct FullScanChecker<C>(C);

impl<A: Algorithm, C: TaskChecker<A>> TaskChecker<A> for FullScanChecker<C> {
    fn check_snapshot(&self, graph: &Graph, config: &[A::State]) -> Vec<String> {
        self.0.check_snapshot(graph, config)
    }
    fn check_window(&self, graph: &Graph, output_changes: &[u64], rounds: u64) -> Vec<String> {
        self.0.check_window(graph, output_changes, rounds)
    }
    fn task_name(&self) -> &'static str {
        self.0.task_name()
    }
}

/// Builds a fresh boxed scheduler per run (paired runs need twin instances).
type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

/// The six built-in scheduler families (same roster as `engine_equivalence`).
fn scheduler_factories(n: usize) -> Vec<(&'static str, SchedulerFactory)> {
    vec![
        ("synchronous", Box::new(|| Box::new(SynchronousScheduler))),
        (
            "uniform-random",
            Box::new(|| Box::new(UniformRandomScheduler::new(0.5))),
        ),
        ("central", Box::new(|| Box::new(CentralScheduler))),
        (
            "round-robin",
            Box::new(|| Box::<RoundRobinScheduler>::default()),
        ),
        (
            "adversarial-laggard",
            Box::new(move || Box::new(AdversarialLaggardScheduler::starving(n - 1, 4))),
        ),
        (
            "scripted",
            Box::new(move || {
                Box::new(ScriptedScheduler::new(vec![
                    (0..n).rev().collect(),
                    vec![n / 2, 0, n / 2],
                    vec![n - 1, 0],
                    (0..n).collect(),
                ]))
            }),
        ),
    ]
}

/// `run_until_legitimate` with AlgAU's `GoodGraphOracle` (incremental) agrees
/// with the hidden-decomposition wrapper (full scan) on outcome and final
/// configuration — across all six schedulers, a dense and a sparse graph,
/// and both step engines.
#[test]
fn algau_round_checks_match_full_scan() {
    let graphs = [("dense", Graph::complete(8)), ("sparse", Graph::cycle(12))];
    for (glabel, graph) in &graphs {
        let n = graph.node_count();
        let alg = AlgAu::new(graph.diameter());
        let palette = alg.states();
        let oracle = GoodGraphOracle::new(alg);
        assert!(
            oracle.as_local().is_some(),
            "GoodGraphOracle must advertise its decomposition"
        );
        let full = FullScanOracle(GoodGraphOracle::new(alg));
        for (slabel, factory) in scheduler_factories(n) {
            for engine in [EngineKind::Serial, EngineKind::Sharded { threads: 2 }] {
                for seed in 0..2u64 {
                    let context = format!("{glabel}/{slabel}/{engine:?}/seed {seed}");
                    let mut inc = ExecutionBuilder::new(&alg, graph)
                        .seed(seed)
                        .engine(engine)
                        .random_initial(&palette);
                    let mut scan = ExecutionBuilder::new(&alg, graph)
                        .seed(seed)
                        .engine(engine)
                        .random_initial(&palette);
                    let mut sched_a = factory();
                    let mut sched_b = factory();
                    let a = inc.run_until_legitimate(&mut *sched_a, &oracle, 3000);
                    let b = scan.run_until_legitimate(&mut *sched_b, &full, 3000);
                    assert_eq!(a, b, "[{context}] outcomes diverged");
                    assert_eq!(
                        inc.configuration(),
                        scan.configuration(),
                        "[{context}] final configurations diverged"
                    );
                }
            }
        }
        // Sanity: the comparison is not vacuous — the synchronous run stabilizes.
        let mut exec = ExecutionBuilder::new(&alg, graph)
            .seed(0)
            .random_initial(&palette);
        let outcome = exec.run_until_legitimate(&mut SynchronousScheduler, &oracle, 3000);
        assert!(
            matches!(outcome, StabilizationOutcome::Stabilized { .. }),
            "[{glabel}] synchronous run must stabilize, got {outcome:?}"
        );
    }
}

/// The named `MinPlusOneOracle` (incremental) agrees with both the wrapped
/// oracle and the plain `min_plus_one_legitimate` function (whose closure
/// blanket impl naturally has no decomposition) — three paths, one verdict.
#[test]
fn min_plus_one_round_checks_match_full_scan_and_closure() {
    let graph = Graph::grid(4, 4);
    let n = graph.node_count();
    let alg = MinPlusOne::new();
    let palette = [0u64, 1, 5, 17, 100, 1000];
    let oracle = MinPlusOneOracle;
    let full = FullScanOracle(MinPlusOneOracle);
    for (slabel, factory) in scheduler_factories(n) {
        for seed in 0..2u64 {
            let run = |which: usize| {
                let mut exec = ExecutionBuilder::new(&alg, &graph)
                    .seed(seed)
                    .random_initial(&palette);
                let mut sched = factory();
                let outcome = match which {
                    0 => exec.run_until_legitimate(&mut *sched, &oracle, 2000),
                    1 => exec.run_until_legitimate(&mut *sched, &full, 2000),
                    _ => exec.run_until_legitimate(&mut *sched, &min_plus_one_legitimate, 2000),
                };
                (outcome, exec.configuration().to_vec())
            };
            let incremental = run(0);
            assert_eq!(incremental, run(1), "[{slabel}/seed {seed}] vs wrapper");
            assert_eq!(incremental, run(2), "[{slabel}/seed {seed}] vs closure");
        }
    }
}

/// `measure_stabilization` — stabilization phase plus verification window —
/// produces the identical `StabilizationReport` through the incremental and
/// the full-scan paths, for both AlgAU and the min-plus-one baseline.
#[test]
fn stabilization_reports_match_full_scan() {
    // AlgAU: decomposing oracle + decomposing snapshot checker.
    let graph = Graph::cycle(10);
    let alg = AlgAu::new(graph.diameter());
    let palette = alg.states();
    for seed in 0..3u64 {
        let mut inc = ExecutionBuilder::new(&alg, &graph)
            .seed(seed)
            .random_initial(&palette);
        let mut scan = ExecutionBuilder::new(&alg, &graph)
            .seed(seed)
            .random_initial(&palette);
        let mut sched_a = UniformRandomScheduler::new(0.5);
        let mut sched_b = UniformRandomScheduler::new(0.5);
        let a = measure_stabilization(
            &mut inc,
            &mut sched_a,
            &GoodGraphOracle::new(alg),
            &AuChecker::new(alg),
            4000,
            20,
        );
        let b = measure_stabilization(
            &mut scan,
            &mut sched_b,
            &FullScanOracle(GoodGraphOracle::new(alg)),
            &FullScanChecker(AuChecker::new(alg)),
            4000,
            20,
        );
        assert_eq!(a, b, "AlgAU seed {seed}: reports diverged");
        assert!(a.is_clean(), "AlgAU seed {seed}: {a:?}");
    }
    // Min-plus-one: same comparison on the baseline's checker.
    let alg = MinPlusOne::new();
    for seed in 0..3u64 {
        let run = |wrapped: bool| {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&[0u64, 3, 55, 900]);
            let mut sched = RoundRobinScheduler::default();
            if wrapped {
                measure_stabilization(
                    &mut exec,
                    &mut sched,
                    &FullScanOracle(MinPlusOneOracle),
                    &FullScanChecker(MinPlusOneChecker::default()),
                    1000,
                    25,
                )
            } else {
                measure_stabilization(
                    &mut exec,
                    &mut sched,
                    &MinPlusOneOracle,
                    &MinPlusOneChecker::default(),
                    1000,
                    25,
                )
            }
        };
        let a = run(false);
        assert_eq!(a, run(true), "min-plus-one seed {seed}: reports diverged");
        assert!(a.is_clean(), "min-plus-one seed {seed}: {a:?}");
    }
}

/// `measure_static_stabilization` (output-stability measurement) produces the
/// identical report whether the snapshot checks run incrementally or as
/// per-round full scans.
#[test]
fn static_stabilization_reports_match_full_scan() {
    let graph = Graph::grid(3, 4);
    let alg = MinPlusOne::new();
    for seed in 0..3u64 {
        let run = |wrapped: bool| {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&[900u64, 3, 55, 0, 12, 700]);
            let mut sched = UniformRandomScheduler::new(0.4);
            if wrapped {
                measure_static_stabilization(
                    &mut exec,
                    &mut sched,
                    &FullScanChecker(MinPlusOneChecker::default()),
                    200,
                    10,
                )
            } else {
                measure_static_stabilization(
                    &mut exec,
                    &mut sched,
                    &MinPlusOneChecker::default(),
                    200,
                    10,
                )
            }
        };
        let a = run(false);
        assert_eq!(a, run(true), "seed {seed}: static reports diverged");
        // Min-plus-one clocks advance forever, so *output stability* never
        // holds — the point here is that the per-round safety snapshots and
        // the final-round violation list agree between the two paths. The
        // safety predicate itself is satisfied by the end of the horizon.
        assert_eq!(a.horizon_rounds, 200, "seed {seed}: {a:?}");
        assert!(a.final_violations.is_empty(), "seed {seed}: {a:?}");
    }
}

/// The verification window records at most [`MAX_RECORDED_VIOLATIONS`]
/// messages plus one suppression marker, no matter how noisy the run: an
/// always-true oracle drops straight into a window where an always-violating
/// checker fires twice per round for 100 rounds.
#[test]
fn verification_window_caps_recorded_violations() {
    struct AlwaysViolating;
    impl TaskChecker<MinPlusOne> for AlwaysViolating {
        fn check_snapshot(&self, _graph: &Graph, _config: &[u64]) -> Vec<String> {
            vec![
                "first complaint".to_string(),
                "second complaint".to_string(),
            ]
        }
    }
    let graph = Graph::cycle(6);
    let alg = MinPlusOne::new();
    let mut exec = Execution::new(&alg, &graph, vec![0; 6], 1);
    let mut sched = SynchronousScheduler;
    let always_true = |_: &Graph, _: &[u64]| true;
    let report = measure_stabilization(
        &mut exec,
        &mut sched,
        &always_true,
        &AlwaysViolating,
        10,
        100,
    );
    assert_eq!(
        report.violations.len(),
        MAX_RECORDED_VIOLATIONS + 1,
        "cap must hold: {} violations recorded",
        report.violations.len()
    );
    assert!(
        report.violations.last().unwrap().contains("suppressed"),
        "the final entry must be the suppression marker: {:?}",
        report.violations.last()
    );
    assert!(violations_capped(&report.violations));
    assert_eq!(
        report.verification_rounds, 100,
        "the window still runs to length"
    );
}

/// The tissue (MIS) composite predicate decomposes: at *every* reachable and
/// fault-corrupted configuration, `tissue_pattern_legitimate` agrees with the
/// conjunction of `tissue_node_ok` over all nodes, and the uniform fast path
/// agrees on uniform configurations. This is the equivalence the sweep's
/// incremental tissue oracle relies on.
#[test]
fn tissue_decomposition_matches_global_predicate() {
    use stone_age_unison::bio::{tissue_node_ok, tissue_pattern_legitimate, tissue_uniform_ok};
    use stone_age_unison::protocols::mis::Decision;
    use stone_age_unison::protocols::restart::{RestartState, RestartableAlgorithm};
    use stone_age_unison::synchronizer::{async_mis, SyncState};

    let graph = Graph::grid(3, 4);
    let n = graph.node_count();
    let alg = async_mis(graph.diameter());
    // Representative corrupted states: arbitrary clocks × arbitrary decisions
    // (the same palette shape the bio recovery harness uses).
    let mut palette = Vec::new();
    for turn in alg.unison().states() {
        for decision in [Decision::Undecided, Decision::In, Decision::Out] {
            let mut host = alg.inner().host().initial_state();
            host.decision = decision;
            host.detect_id = if decision == Decision::In { 1 } else { 0 };
            palette.push(SyncState {
                current: RestartState::Host(host),
                previous: RestartState::Host(host),
                turn,
            });
        }
    }
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(9)
        .initial(vec![alg.fresh_state(); n]);
    let mut sched = UniformRandomScheduler::new(0.5);
    // Stabilize fault-free first so the equality is checked on a legitimate
    // configuration too (not just vacuously on broken ones).
    let outcome = exec.run_until_legitimate(&mut sched, &tissue_pattern_legitimate, 20_000);
    assert!(
        matches!(outcome, StabilizationOutcome::Stabilized { .. }),
        "tissue must stabilize fault-free: {outcome:?}"
    );
    let check = |graph: &Graph, config: &[_], when: &str| {
        let global = tissue_pattern_legitimate(graph, config);
        let local = (0..config.len()).all(|v| tissue_node_ok(graph, config, v));
        assert_eq!(global, local, "decomposition diverged {when}");
        global
    };
    assert!(check(&graph, exec.configuration(), "at stabilization"));
    // Keep stepping under periodic corruption; the equality must hold at
    // every intermediate configuration.
    let mut injector = FaultInjector::new(
        FaultPlan::Periodic {
            period: 4,
            count: 2,
        },
        palette.clone(),
        3,
    );
    let mut saw_broken = false;
    for step in 0..600 {
        let out = exec.step_with(&mut sched);
        if out.round_completed {
            injector.on_round(&mut exec);
        }
        let legit = check(&graph, exec.configuration(), &format!("at step {step}"));
        saw_broken |= !legit;
    }
    assert!(
        saw_broken,
        "faults must have broken the pattern at least once"
    );
    // Uniform fast path: exact agreement on every palette state.
    for (i, state) in palette.iter().enumerate() {
        let uniform: Vec<_> = vec![*state; n];
        assert_eq!(
            tissue_uniform_ok(&graph, state),
            tissue_pattern_legitimate(&graph, &uniform),
            "uniform verdict diverged for palette state {i}"
        );
    }
}

/// The colony (LE) composite predicate decomposes as a *weighted* predicate:
/// legitimate ⟺ every node ok (no mid-reset cells) ∧ Σ leader weights = 1 —
/// at every reachable and corrupted configuration.
#[test]
fn colony_decomposition_matches_global_predicate() {
    use stone_age_unison::bio::{colony_leader_legitimate, colony_leader_weight, colony_node_ok};
    use stone_age_unison::protocols::le::Stage;
    use stone_age_unison::protocols::restart::{RestartState, RestartableAlgorithm};
    use stone_age_unison::synchronizer::{async_le, SyncState};

    let graph = Graph::complete(6);
    let n = graph.node_count();
    let alg = async_le(graph.diameter());
    let mut palette = Vec::new();
    for turn in alg.unison().states() {
        for leader in [false, true] {
            let mut host = alg.inner().host().initial_state();
            host.leader = leader;
            host.stage = Stage::Verification;
            palette.push(SyncState {
                current: RestartState::Host(host),
                previous: RestartState::Host(host),
                turn,
            });
        }
    }
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(5)
        .initial(vec![alg.fresh_state(); n]);
    let mut sched = UniformRandomScheduler::new(0.5);
    let outcome = exec.run_until_legitimate(&mut sched, &colony_leader_legitimate, 100_000);
    assert!(
        matches!(outcome, StabilizationOutcome::Stabilized { .. }),
        "colony must elect a leader fault-free: {outcome:?}"
    );
    let check = |config: &[_], when: &str| {
        let global = colony_leader_legitimate(&graph, config);
        let nodes_ok = (0..config.len()).all(|v| colony_node_ok(config, v));
        let weight: i64 = (0..config.len())
            .map(|v| colony_leader_weight(config, v))
            .sum();
        assert_eq!(
            global,
            nodes_ok && weight == 1,
            "weighted decomposition diverged {when} (nodes_ok={nodes_ok}, weight={weight})"
        );
        global
    };
    assert!(check(exec.configuration(), "at stabilization"));
    let mut injector = FaultInjector::new(
        FaultPlan::Periodic {
            period: 4,
            count: 2,
        },
        palette.clone(),
        7,
    );
    let mut saw_broken = false;
    for step in 0..600 {
        let out = exec.step_with(&mut sched);
        if out.round_completed {
            injector.on_round(&mut exec);
        }
        saw_broken |= !check(exec.configuration(), &format!("at step {step}"));
    }
    assert!(
        saw_broken,
        "faults must have unseated the leader at least once"
    );
}

/// Sweep-level windows under mid-window faults: a unit whose periodic faults
/// keep striking *inside* the verification window records violations, and a
/// kill/resume cycle through JSON checkpoints — which forces the incremental
/// tracker to reseed its bad-set from the restored configuration — finishes
/// bit-identical to the uninterrupted run. Covers all four algorithm axes
/// and both engines.
#[test]
fn sweep_windows_with_midwindow_faults_survive_kill_resume() {
    use sa_bench::sweep::{CheckpointPolicy, SweepSpec, UnitOutcome, UnitResult};
    use stone_age_unison::model::json::JsonValue;

    let spec = SweepSpec::parse(
        r#"{
          "name": "oracle-window",
          "tasks": [{
            "id": "OW",
            "kind": "stabilization",
            "topologies": [{"kind": "torus", "rows": 3, "cols": 3}],
            "algorithms": ["algau", "min-plus-one", "le", "mis"],
            "schedulers": ["round-robin"],
            "engines": ["serial", {"kind": "sharded", "threads": 2}],
            "fault": {"kind": "periodic", "period": 6, "count": 2},
            "seeds": 1,
            "max_rounds": 4000,
            "verify_rounds": 24
          }]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    assert_eq!(units.len(), 8);
    let mut any_violations = false;
    for unit in &units {
        let reference: UnitResult =
            match sa_bench::sweep::run_unit(unit, &CheckpointPolicy::default()).expect("unit runs")
            {
                UnitOutcome::Complete(r) => r,
                UnitOutcome::Interrupted(_) => unreachable!(),
            };
        any_violations |= !reference.violations.is_empty();
        let mut checkpoint: Option<JsonValue> = None;
        let mut kills = 0usize;
        let resumed = loop {
            let policy = CheckpointPolicy {
                every_steps: 0,
                sink: None,
                resume_from: checkpoint.as_ref(),
                interrupt_after_steps: Some(13),
                cancel: None,
            };
            match sa_bench::sweep::run_unit(unit, &policy).expect("unit runs") {
                UnitOutcome::Complete(r) => break r,
                UnitOutcome::Interrupted(doc) => {
                    kills += 1;
                    assert!(kills < 100_000, "unit {} never finished", unit.id());
                    checkpoint =
                        Some(JsonValue::parse(&doc.render_pretty()).expect("checkpoint parses"));
                }
            }
        };
        assert!(
            kills > 0,
            "unit {} finished before the first kill",
            unit.id()
        );
        assert_eq!(
            resumed,
            reference,
            "unit {} diverged after mid-window kill/resume",
            unit.id()
        );
    }
    assert!(
        any_violations,
        "the periodic faults must break legitimacy inside at least one verification window"
    );
}

/// Sweep-level violation capping: continuous noise over a long verification
/// window overflows the recording cap deterministically — the capped vector
/// (64 messages + 1 suppression marker) survives kill/resume byte-for-byte.
#[test]
fn sweep_window_violation_cap_is_deterministic_across_resume() {
    use sa_bench::sweep::{CheckpointPolicy, SweepSpec, UnitOutcome, UnitResult};
    use stone_age_unison::model::json::JsonValue;

    let spec = SweepSpec::parse(
        r#"{
          "name": "oracle-cap",
          "tasks": [{
            "id": "OC",
            "kind": "stabilization",
            "topologies": [{"kind": "torus", "rows": 3, "cols": 3}],
            "algorithms": ["min-plus-one"],
            "schedulers": ["round-robin"],
            "engines": ["serial"],
            "fault": {"kind": "continuous", "per_node_rate": 0.08},
            "seeds": 1,
            "max_rounds": 4000,
            "verify_rounds": 400
          }]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    assert_eq!(units.len(), 1);
    let reference: UnitResult = match sa_bench::sweep::run_unit(
        &units[0],
        &CheckpointPolicy::default(),
    )
    .expect("unit runs")
    {
        UnitOutcome::Complete(r) => r,
        UnitOutcome::Interrupted(_) => unreachable!(),
    };
    assert!(
        reference.stabilization_rounds.is_some(),
        "the baseline must stabilize between faults: {reference:?}"
    );
    assert_eq!(
        reference.violations.len(),
        MAX_RECORDED_VIOLATIONS + 1,
        "continuous noise over a 400-round window must overflow the cap: {} recorded",
        reference.violations.len()
    );
    assert!(reference.violations.last().unwrap().contains("suppressed"));
    let mut checkpoint: Option<JsonValue> = None;
    let mut kills = 0usize;
    let resumed = loop {
        let policy = CheckpointPolicy {
            every_steps: 0,
            sink: None,
            resume_from: checkpoint.as_ref(),
            interrupt_after_steps: Some(17),
            cancel: None,
        };
        match sa_bench::sweep::run_unit(&units[0], &policy).expect("unit runs") {
            UnitOutcome::Complete(r) => break r,
            UnitOutcome::Interrupted(doc) => {
                kills += 1;
                assert!(kills < 100_000, "unit never finished");
                checkpoint =
                    Some(JsonValue::parse(&doc.render_pretty()).expect("checkpoint parses"));
            }
        }
    };
    assert!(kills > 0, "the unit must have been killed at least once");
    assert_eq!(
        resumed, reference,
        "capped violations diverged after resume"
    );
}
