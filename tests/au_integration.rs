//! Cross-crate integration tests for AlgAU (Theorem 1.1): stabilization on many
//! graph families under many schedulers, recovery from injected faults, and the
//! Appendix-A live-lock comparison.

use stone_age_unison::model::algorithm::StateSpace;
use stone_age_unison::model::checker::measure_stabilization;
use stone_age_unison::model::fault::{FaultInjector, FaultPlan};
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::topology::Topology;
use stone_age_unison::unison::baseline::{
    livelock_configuration, livelock_schedule, ResetAttempt, ResetTurn,
};
use stone_age_unison::unison::{AlgAu, AuChecker, GoodGraphOracle, Predicates, Turn};

/// Budget used in the tests: comfortably above the O(D³) bound without being huge.
fn round_budget(d: usize) -> u64 {
    (400 * d.pow(3) + 4_000) as u64
}

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("path", Graph::path(6)),
        ("cycle", Graph::cycle(9)),
        ("star", Graph::star(8)),
        ("complete", Graph::complete(6)),
        ("grid", Graph::grid(3, 4)),
        (
            "tree",
            Topology::BalancedTree { arity: 2, depth: 3 }.build_deterministic(),
        ),
        ("gnp", Topology::ErdosRenyi { n: 12, p: 0.35 }.build(seed)),
        (
            "damaged-clique",
            Topology::DamagedClique {
                n: 10,
                drop: 0.4,
                max_diameter: 2,
            }
            .build(seed),
        ),
    ]
}

#[test]
fn algau_stabilizes_on_every_family_under_every_scheduler() {
    for (name, graph) in families(3) {
        let d = graph.diameter();
        let alg = AlgAu::new(d);
        let palette = alg.states();
        let budget = round_budget(d);
        for seed in 0..3u64 {
            // synchronous
            run_one(
                &alg,
                &graph,
                &palette,
                &mut SynchronousScheduler,
                seed,
                budget,
                name,
            );
            // uniform random
            run_one(
                &alg,
                &graph,
                &palette,
                &mut UniformRandomScheduler::new(0.4),
                seed,
                budget,
                name,
            );
            // central daemon
            run_one(
                &alg,
                &graph,
                &palette,
                &mut CentralScheduler,
                seed,
                budget,
                name,
            );
            // adversarial laggard
            run_one(
                &alg,
                &graph,
                &palette,
                &mut AdversarialLaggardScheduler::starving(0, 3),
                seed,
                budget,
                name,
            );
        }
    }
}

fn run_one<S: Scheduler>(
    alg: &AlgAu,
    graph: &Graph,
    palette: &[Turn],
    scheduler: &mut S,
    seed: u64,
    budget: u64,
    name: &str,
) {
    let mut exec = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .random_initial(palette);
    let report = measure_stabilization(
        &mut exec,
        scheduler,
        &GoodGraphOracle::new(*alg),
        &AuChecker::new(*alg),
        budget,
        3 * graph.diameter() as u64 + 6,
    );
    assert!(
        report.is_clean(),
        "{name} under {} (seed {seed}): {report:?}",
        scheduler.name()
    );
    assert!(
        report.stabilization_rounds.unwrap() <= budget,
        "{name}: exceeded budget"
    );
}

#[test]
fn algau_stabilization_grows_no_faster_than_cubic_in_d() {
    // The point of Theorem 1.1 is the *shape*: rounds-to-good must stay well below
    // c·D³ for a modest constant. We check the worst observed run against 100·D³.
    for d in [2usize, 4, 6] {
        let graph = Graph::cycle(2 * d);
        let alg = AlgAu::new(d);
        let palette = alg.states();
        let mut worst = 0u64;
        for seed in 0..5u64 {
            let mut exec = ExecutionBuilder::new(&alg, &graph)
                .seed(seed)
                .random_initial(&palette);
            let mut sched = CentralScheduler;
            let outcome =
                exec.run_until_legitimate(&mut sched, &GoodGraphOracle::new(alg), round_budget(d));
            worst = worst.max(outcome.rounds().expect("must stabilize"));
        }
        assert!(
            worst <= (100 * d.pow(3)) as u64,
            "D = {d}: worst stabilization {worst} rounds exceeds 100·D³"
        );
    }
}

#[test]
fn algau_recovers_from_repeated_fault_bursts() {
    let graph = Graph::grid(3, 3);
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(5)
        .uniform(Turn::Able(1));
    let mut sched = UniformRandomScheduler::new(0.5);
    let oracle = GoodGraphOracle::new(alg);
    let mut injector = FaultInjector::new(
        FaultPlan::Periodic {
            period: 600,
            count: 4,
        },
        palette,
        9,
    );
    let mut recoveries = 0;
    for _ in 0..3 {
        // run up to the next strike
        while injector.faults_injected() == recoveries * 4 {
            let step = exec.step_with(&mut sched);
            if step.round_completed {
                injector.on_round(&mut exec);
            }
        }
        recoveries += 1;
        // after the strike the system must become good again
        let outcome = exec.run_until_legitimate(&mut sched, &oracle, round_budget(d));
        assert!(outcome.is_stabilized(), "burst {recoveries} not recovered");
    }
    assert_eq!(injector.faults_injected(), 12);
}

#[test]
fn post_stabilization_safety_holds_at_every_step_not_just_round_boundaries() {
    let graph = Graph::cycle(8);
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(13)
        .random_initial(&palette);
    let mut sched = UniformRandomScheduler::new(0.6);
    let outcome =
        exec.run_until_legitimate(&mut sched, &GoodGraphOracle::new(alg), round_budget(d));
    assert!(outcome.is_stabilized());
    let p_alg = alg;
    for _ in 0..2_000 {
        exec.step_with(&mut sched);
        let preds = Predicates::new(&p_alg, &graph);
        assert!(preds.graph_good(exec.configuration()));
        assert!(preds.max_discrepancy(exec.configuration()) <= 1);
    }
}

#[test]
fn livelock_schedule_defeats_reset_attempt_but_not_algau() {
    let graph = Graph::cycle(8);

    // The Appendix-A design cycles forever.
    let reset = ResetAttempt::counterexample_instance();
    let mut exec = ExecutionBuilder::new(&reset, &graph)
        .seed(0)
        .initial(livelock_configuration());
    let mut sched = ScriptedScheduler::new(livelock_schedule());
    let all_clock = |_: &Graph, cfg: &[ResetTurn]| cfg.iter().all(ResetTurn::is_clock);
    let outcome = exec.run_until_legitimate(&mut sched, &all_clock, 5_000);
    assert!(!outcome.is_stabilized(), "the reset attempt must live-lock");

    // AlgAU stabilizes under the very same fair schedule from arbitrary configurations.
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();
    for seed in 0..3u64 {
        let mut exec = ExecutionBuilder::new(&alg, &graph)
            .seed(seed)
            .random_initial(&palette);
        let mut sched = ScriptedScheduler::new(livelock_schedule());
        let outcome =
            exec.run_until_legitimate(&mut sched, &GoodGraphOracle::new(alg), round_budget(d));
        assert!(
            outcome.is_stabilized(),
            "AlgAU must stabilize (seed {seed})"
        );
    }
}

#[test]
fn state_space_is_independent_of_graph_size() {
    // size-uniformity: the same AlgAU instance (same states) runs on graphs of any
    // size as long as the diameter bound holds.
    let alg = AlgAu::new(2);
    let states = alg.state_count();
    for n in [4usize, 16, 64] {
        let graph = Graph::star(n);
        assert!(graph.diameter() <= 2);
        let mut exec = ExecutionBuilder::new(&alg, &graph)
            .seed(1)
            .random_initial(&alg.states());
        let mut sched = SynchronousScheduler;
        let outcome =
            exec.run_until_legitimate(&mut sched, &GoodGraphOracle::new(alg), round_budget(2));
        assert!(outcome.is_stabilized(), "star-{n}");
        assert_eq!(alg.state_count(), states);
    }
}
