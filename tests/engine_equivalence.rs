//! Serial ≡ sharded engine equivalence, and activation-order invariance.
//!
//! The sharded step engine partitions each step's activation set across a
//! worker pool; because transitions read only the step's start snapshot and
//! draw coins from counter-based streams keyed by `(seed, node, time)`, the
//! shard count must be **observationally irrelevant**. These tests pin that
//! guarantee by running serial and sharded executions in lockstep — across
//! all six schedulers, both signal modes, under periodic fault injection,
//! for a deterministic (AlgAU) and a randomized algorithm — and comparing
//! step outcomes, configurations, changed-node lists, per-node metrics and
//! round accounting at every step. Identical configurations of the
//! *randomized* algorithm are simultaneously a check that the per-node RNG
//! streams agree draw for draw.
//!
//! The file also carries the regression test for the PR 1 order-dependence:
//! scripted out-of-order schedules now replay identically to ascending-id
//! schedules.

use rand::RngCore;

mod common;
use common::Cycler;
use stone_age_unison::model::algorithm::{Algorithm, StateSpace};
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::EngineKind;
use stone_age_unison::unison::AlgAu;

/// Worker counts the sharded engine is exercised at.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A randomized toy: adopt a uniformly random sensed state, or flip to a
/// fresh coin value — consumes a *variable* number of RNG draws per
/// activation, which makes stream divergence loud.
struct NoisyAdopt;

impl Algorithm for NoisyAdopt {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, sig: &Signal<u8>, rng: &mut dyn RngCore) -> u8 {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            let k = rng.gen_range(0..sig.len().max(1));
            sig.iter().nth(k).copied().unwrap_or(*s)
        } else {
            rng.gen_range(0..6u8)
        }
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some((0..6).collect())
    }
}

/// Builds a fresh boxed scheduler per run (each execution of a lockstep pair
/// needs its own instance).
type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

/// The six built-in scheduler families, freshly built per run. The scripted
/// entry deliberately lists nodes out of order and with duplicates.
fn scheduler_factories(n: usize) -> Vec<(&'static str, SchedulerFactory)> {
    vec![
        ("synchronous", Box::new(|| Box::new(SynchronousScheduler))),
        (
            "uniform-random",
            Box::new(|| Box::new(UniformRandomScheduler::new(0.5))),
        ),
        ("central", Box::new(|| Box::new(CentralScheduler))),
        (
            "round-robin",
            Box::new(|| Box::<RoundRobinScheduler>::default()),
        ),
        (
            "adversarial-laggard",
            Box::new(move || Box::new(AdversarialLaggardScheduler::starving(n - 1, 4))),
        ),
        (
            "scripted",
            Box::new(move || {
                Box::new(ScriptedScheduler::new(vec![
                    (0..n).rev().collect(),
                    vec![n / 2, 0, n / 2],
                    vec![n - 1, 0],
                    (0..n).collect(),
                ]))
            }),
        ),
    ]
}

/// Steps a serial and a sharded execution of the same algorithm in lockstep
/// (with periodic fault injection when a palette is given) and asserts they
/// stay bit-for-bit identical in every observable.
#[allow(clippy::too_many_arguments)]
fn assert_lockstep_equivalence<A: Algorithm>(
    alg: &A,
    graph: &Graph,
    init: Vec<A::State>,
    seed: u64,
    mode: SignalMode,
    workers: usize,
    make_sched: &dyn Fn() -> Box<dyn Scheduler>,
    fault_palette: Option<&[A::State]>,
    steps: usize,
    context: &str,
) {
    let mut serial = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(EngineKind::Serial)
        .initial(init.clone());
    let mut sharded = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(EngineKind::Sharded { threads: workers })
        .initial(init);
    let mut sched_a = make_sched();
    let mut sched_b = make_sched();
    let mut injector_a = fault_palette.map(|p| {
        FaultInjector::new(
            FaultPlan::Periodic {
                period: 2,
                count: 2,
            },
            p.to_vec(),
            seed,
        )
    });
    let mut injector_b = fault_palette.map(|p| {
        FaultInjector::new(
            FaultPlan::Periodic {
                period: 2,
                count: 2,
            },
            p.to_vec(),
            seed,
        )
    });
    for step in 0..steps {
        let a = serial.step_with(&mut *sched_a);
        let b = sharded.step_with(&mut *sched_b);
        assert_eq!(a, b, "[{context}] step {step}: outcome diverged");
        assert_eq!(
            serial.configuration(),
            sharded.configuration(),
            "[{context}] step {step}: configuration diverged"
        );
        assert_eq!(
            serial.last_changed(),
            sharded.last_changed(),
            "[{context}] step {step}: changed-node list diverged"
        );
        if a.round_completed {
            if let (Some(ia), Some(ib)) = (injector_a.as_mut(), injector_b.as_mut()) {
                let va = ia.on_round(&mut serial);
                let vb = ib.on_round(&mut sharded);
                assert_eq!(va, vb, "[{context}] step {step}: fault victims diverged");
            }
        }
    }
    assert_eq!(serial.time(), sharded.time(), "[{context}] time diverged");
    assert_eq!(
        serial.rounds(),
        sharded.rounds(),
        "[{context}] rounds diverged"
    );
    assert_eq!(
        serial.counters(),
        sharded.counters(),
        "[{context}] per-node metrics diverged"
    );
    assert!(
        sharded.validate_incremental_sensing(),
        "[{context}] sharded sensing state inconsistent"
    );
}

/// The full matrix for the paper's deterministic unison algorithm: six
/// schedulers × dense/sparse × 1/2/4/8 workers, with fault injection.
#[test]
fn algau_sharded_matches_serial_across_schedulers_modes_workers_and_faults() {
    let graph = Topology::Grid { rows: 3, cols: 4 }.build_deterministic();
    let n = graph.node_count();
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();
    let init: Vec<_> = (0..n).map(|v| palette[v * 7 % palette.len()]).collect();
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            for workers in WORKER_COUNTS {
                let context = format!("algau/{sched_name}/{mode_name}/workers={workers}");
                assert_lockstep_equivalence(
                    &alg,
                    &graph,
                    init.clone(),
                    0xa1_900 + workers as u64,
                    mode,
                    workers,
                    factory.as_ref(),
                    Some(&palette),
                    40,
                    &context,
                );
            }
        }
    }
}

/// The same matrix for a randomized algorithm: identical trajectories here
/// additionally prove the per-node coin streams agree draw for draw
/// (transition coins are the only nondeterminism in the step).
#[test]
fn randomized_sharded_matches_serial_across_schedulers_modes_workers_and_faults() {
    let graph = Topology::Cycle { n: 11 }.build_deterministic();
    let n = graph.node_count();
    let init: Vec<u8> = (0..n as u8).map(|v| v % 6).collect();
    let palette: Vec<u8> = (0..6).collect();
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            for workers in WORKER_COUNTS {
                let context = format!("noisy/{sched_name}/{mode_name}/workers={workers}");
                assert_lockstep_equivalence(
                    &NoisyAdopt,
                    &graph,
                    init.clone(),
                    0x5eed + workers as u64,
                    mode,
                    workers,
                    factory.as_ref(),
                    Some(&palette),
                    40,
                    &context,
                );
            }
        }
    }
}

/// A corruption outside the enumerated state space degrades the dense sense
/// stage mid-run; the sharded engine must follow the serial engine through
/// the degrade and onward on the sparse fallback.
#[test]
fn sharded_follows_serial_through_mid_run_degrade_to_sparse() {
    let graph = Graph::grid(3, 3);
    let init = vec![0u8; 9];
    for workers in WORKER_COUNTS {
        let mut serial = ExecutionBuilder::new(&NoisyAdopt, &graph)
            .seed(3)
            .engine(EngineKind::Serial)
            .initial(init.clone());
        let mut sharded = ExecutionBuilder::new(&NoisyAdopt, &graph)
            .seed(3)
            .engine(EngineKind::Sharded { threads: workers })
            .initial(init.clone());
        let mut sched_a = SynchronousScheduler;
        let mut sched_b = SynchronousScheduler;
        for step in 0..30 {
            if step == 9 {
                serial.corrupt(4, 77); // outside NoisyAdopt's {0..6} space
                sharded.corrupt(4, 77);
                assert!(!serial.uses_dense_signals());
                assert!(!sharded.uses_dense_signals());
            }
            serial.step_with(&mut sched_a);
            sharded.step_with(&mut sched_b);
            assert_eq!(
                serial.configuration(),
                sharded.configuration(),
                "workers={workers} step {step}"
            );
        }
        assert_eq!(serial.counters(), sharded.counters());
    }
}

/// Large-activation-set equivalence: a 256-node expander under the
/// synchronous scheduler gives every worker a real multi-node chunk.
#[test]
fn sharded_matches_serial_on_a_large_expander() {
    let graph = Topology::RandomRegular { n: 256, deg: 4 }.build(13);
    let d = graph.diameter();
    let alg = AlgAu::new(d);
    let palette = alg.states();
    let init: Vec<_> = (0..graph.node_count())
        .map(|v| palette[(v * 31 + 5) % palette.len()])
        .collect();
    for workers in [4usize, 8] {
        assert_lockstep_equivalence(
            &alg,
            &graph,
            init.clone(),
            99,
            SignalMode::Auto,
            workers,
            &|| Box::new(SynchronousScheduler),
            None,
            25,
            &format!("expander/workers={workers}"),
        );
    }
}

// ---- mask-compiled vs closure transition path ------------------------------

/// Steps a mask-compiled and a closure-path execution of the same algorithm
/// in lockstep and asserts bit-for-bit identity in every observable.
#[allow(clippy::too_many_arguments)]
fn assert_masked_matches_closure<A: Algorithm>(
    alg: &A,
    graph: &Graph,
    init: Vec<A::State>,
    seed: u64,
    mode: SignalMode,
    make_sched: &dyn Fn() -> Box<dyn Scheduler>,
    steps: usize,
    context: &str,
) {
    let mut masked = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .masked_transitions(true)
        .initial(init.clone());
    let mut closure = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .masked_transitions(false)
        .initial(init);
    assert!(
        masked.uses_masked_transitions(),
        "[{context}] algorithm must compile masks"
    );
    assert!(!closure.uses_masked_transitions());
    let mut sched_a = make_sched();
    let mut sched_b = make_sched();
    for step in 0..steps {
        let a = masked.step_with(&mut *sched_a);
        let b = closure.step_with(&mut *sched_b);
        assert_eq!(a, b, "[{context}] step {step}: outcome diverged");
        assert_eq!(
            masked.configuration(),
            closure.configuration(),
            "[{context}] step {step}: configuration diverged"
        );
        assert_eq!(
            masked.last_changed(),
            closure.last_changed(),
            "[{context}] step {step}: changed-node list diverged"
        );
    }
    assert_eq!(
        masked.counters(),
        closure.counters(),
        "[{context}] per-node metrics diverged"
    );
    assert!(masked.validate_incremental_sensing());
}

/// AlgAU's mask-compiled transition replays the closure path exactly: all
/// six schedulers, dense *and* sparse signal modes (the sparse mode
/// exercises the word-level scratch rebuild in `evaluate_sparse`), from an
/// adversarial initial configuration.
#[test]
fn algau_masked_path_matches_closure_path() {
    let graph = Topology::Grid { rows: 3, cols: 4 }.build_deterministic();
    let n = graph.node_count();
    let alg = AlgAu::new(graph.diameter());
    let palette = alg.states();
    let init: Vec<_> = (0..n)
        .map(|v| palette[(v * 5 + 1) % palette.len()])
        .collect();
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            assert_masked_matches_closure(
                &alg,
                &graph,
                init.clone(),
                0x3a5c,
                mode,
                factory.as_ref(),
                40,
                &format!("algau-mask/{sched_name}/{mode_name}"),
            );
        }
    }
}

/// A toy with a hand-written mask compilation, used to drive the masked
/// path through a mid-run degrade: advance modulo 6 iff state 1 is sensed.
struct SensesOne;

impl Algorithm for SensesOne {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, sig: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
        if sig.senses(&1) {
            (s + 1) % 6
        } else {
            *s
        }
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some((0..6).collect())
    }
    fn transition_is_deterministic(&self) -> bool {
        true
    }
    fn compile_masked<'s>(
        &'s self,
        index: &std::sync::Arc<StateIndex<u8>>,
    ) -> Option<Box<dyn MaskedTransition<u8> + 's>> {
        struct Masks {
            one: SignalMask<u8>,
            next: Vec<u32>,
        }
        impl MaskedTransition<u8> for Masks {
            fn next_index(
                &self,
                state_idx: u32,
                signal_words: &[u64],
                _rng: &mut dyn RngCore,
            ) -> MaskedOutcome<u8> {
                if self.one.intersects_words(signal_words) {
                    MaskedOutcome::Indexed(self.next[state_idx as usize])
                } else {
                    MaskedOutcome::Indexed(state_idx)
                }
            }
        }
        let next = (0..index.len())
            .map(|i| index.position(&((index.state(i) + 1) % 6)).unwrap() as u32)
            .collect();
        Some(Box::new(Masks {
            one: SignalMask::from_states(index, [&1u8]),
            next,
        }))
    }
}

/// A mid-run corruption with a state outside the enumerated space degrades
/// the dense sensing; the mask-compiled path must follow the closure path
/// through the degrade and keep matching on the sparse fallback, where
/// lanes that meet the exotic state fall back per node.
#[test]
fn masked_path_follows_closure_through_degrade() {
    let graph = Graph::grid(3, 3);
    let init: Vec<u8> = (0..9u8).map(|v| v % 6).collect();
    for workers in [1usize, 4] {
        let mut masked = ExecutionBuilder::new(&SensesOne, &graph)
            .seed(5)
            .engine(EngineKind::Sharded { threads: workers })
            .masked_transitions(true)
            .initial(init.clone());
        let mut closure = ExecutionBuilder::new(&SensesOne, &graph)
            .seed(5)
            .engine(EngineKind::Serial)
            .masked_transitions(false)
            .initial(init.clone());
        assert!(masked.uses_masked_transitions());
        let mut sched_a = SynchronousScheduler;
        let mut sched_b = SynchronousScheduler;
        for step in 0..30 {
            if step == 7 {
                masked.corrupt(4, 77); // outside {0..6}
                closure.corrupt(4, 77);
                assert!(!masked.uses_dense_signals());
            }
            masked.step_with(&mut sched_a);
            closure.step_with(&mut sched_b);
            assert_eq!(
                masked.configuration(),
                closure.configuration(),
                "workers={workers} step {step}"
            );
        }
        assert_eq!(masked.counters(), closure.counters());
    }
}

// ---- sharded apply stage ---------------------------------------------------

/// Sharded-apply ≡ serial-apply: on a graph whose synchronous changed sets
/// exceed `SHARDED_APPLY_MIN_CHANGED`, the sharded engine commits the apply
/// stage across its pool by node range; configurations, sensing state and
/// metrics must stay bit-identical to the fully serial engine.
#[test]
fn sharded_apply_matches_serial_on_large_changed_sets() {
    use stone_age_unison::model::engine::SHARDED_APPLY_MIN_CHANGED;
    let graph = Topology::RandomRegular { n: 2048, deg: 5 }.build(17);
    let n = graph.node_count();
    assert!(
        n >= SHARDED_APPLY_MIN_CHANGED * 2,
        "must exceed the threshold"
    );
    let init: Vec<u8> = (0..n).map(|v| ((v * 13 + 4) % 6) as u8).collect();
    for workers in [2usize, 4, 8] {
        assert_lockstep_equivalence(
            &Cycler,
            &graph,
            init.clone(),
            0xbead + workers as u64,
            SignalMode::Auto,
            workers,
            &|| Box::new(SynchronousScheduler),
            None,
            6,
            &format!("sharded-apply/workers={workers}"),
        );
    }
    // A randomized algorithm over the same graph: partial change sets above
    // and below the threshold, plus fault injection.
    let init: Vec<u8> = (0..n).map(|v| (v % 6) as u8).collect();
    let palette: Vec<u8> = (0..6).collect();
    assert_lockstep_equivalence(
        &NoisyAdopt,
        &graph,
        init,
        0xfeed,
        SignalMode::Auto,
        4,
        &|| Box::new(UniformRandomScheduler::new(0.9)),
        Some(&palette),
        6,
        "sharded-apply/noisy",
    );
}

// ---- active-set (dirty-frontier) execution ---------------------------------

/// Steps an active-set and a full-scan execution of the same deterministic
/// algorithm in lockstep (with periodic fault injection when a palette is
/// given) and asserts they stay bit-for-bit identical in every observable.
/// Halfway through, both executions take a snapshot and restore it, which
/// exercises the frontier's conservative re-marking on restore.
#[allow(clippy::too_many_arguments)]
fn assert_active_set_matches_full_scan<A: Algorithm>(
    alg: &A,
    graph: &Graph,
    init: Vec<A::State>,
    seed: u64,
    mode: SignalMode,
    kind: EngineKind,
    make_sched: &dyn Fn() -> Box<dyn Scheduler>,
    fault_palette: Option<&[A::State]>,
    steps: usize,
    context: &str,
) {
    let mut fast = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(kind)
        .active_set(true)
        .initial(init.clone());
    let mut full = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(kind)
        .active_set(false)
        .initial(init);
    assert!(
        fast.uses_active_set(),
        "[{context}] deterministic algorithm must get a frontier"
    );
    assert!(!full.uses_active_set());
    let mut sched_a = make_sched();
    let mut sched_b = make_sched();
    let mut injector_a = fault_palette.map(|p| {
        FaultInjector::new(
            FaultPlan::Periodic {
                period: 2,
                count: 2,
            },
            p.to_vec(),
            seed,
        )
    });
    let mut injector_b = fault_palette.map(|p| {
        FaultInjector::new(
            FaultPlan::Periodic {
                period: 2,
                count: 2,
            },
            p.to_vec(),
            seed,
        )
    });
    for step in 0..steps {
        if step == steps / 2 {
            let snap_a = fast.snapshot();
            let snap_b = full.snapshot();
            fast.restore(&snap_a);
            full.restore(&snap_b);
        }
        let a = fast.step_with(&mut *sched_a);
        let b = full.step_with(&mut *sched_b);
        assert_eq!(a, b, "[{context}] step {step}: outcome diverged");
        assert_eq!(
            fast.configuration(),
            full.configuration(),
            "[{context}] step {step}: configuration diverged"
        );
        assert_eq!(
            fast.last_changed(),
            full.last_changed(),
            "[{context}] step {step}: changed-node list diverged"
        );
        if a.round_completed {
            if let (Some(ia), Some(ib)) = (injector_a.as_mut(), injector_b.as_mut()) {
                let va = ia.on_round(&mut fast);
                let vb = ib.on_round(&mut full);
                assert_eq!(va, vb, "[{context}] step {step}: fault victims diverged");
            }
        }
    }
    assert_eq!(fast.time(), full.time(), "[{context}] time diverged");
    assert_eq!(fast.rounds(), full.rounds(), "[{context}] rounds diverged");
    assert_eq!(
        fast.counters(),
        full.counters(),
        "[{context}] per-node metrics diverged"
    );
    assert!(
        fast.validate_incremental_sensing(),
        "[{context}] active-set sensing state inconsistent"
    );
}

/// The full differential matrix for the paper's deterministic unison
/// algorithm: active-set ≡ full-scan across six schedulers × dense/sparse ×
/// serial/sharded, under periodic fault injection and a mid-run
/// snapshot/restore.
#[test]
fn active_set_matches_full_scan_across_schedulers_modes_and_engines() {
    let graph = Topology::Grid { rows: 3, cols: 4 }.build_deterministic();
    let n = graph.node_count();
    let alg = AlgAu::new(graph.diameter());
    let palette = alg.states();
    let init: Vec<_> = (0..n)
        .map(|v| palette[(v * 7 + 2) % palette.len()])
        .collect();
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            for (engine_name, kind) in [
                ("serial", EngineKind::Serial),
                ("sharded-4", EngineKind::Sharded { threads: 4 }),
            ] {
                let context = format!("active-set/{sched_name}/{mode_name}/{engine_name}");
                assert_active_set_matches_full_scan(
                    &alg,
                    &graph,
                    init.clone(),
                    0xd1_47_00,
                    mode,
                    kind,
                    factory.as_ref(),
                    Some(&palette),
                    40,
                    &context,
                );
            }
        }
    }
}

/// A deterministic spread toy whose synchronous trajectory reaches a
/// *uniform* fixpoint — the frontier must drain to empty through the
/// uniform-noop fast path, and a corruption must re-open exactly one
/// closed neighborhood.
struct Spread;

impl Algorithm for Spread {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, sig: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
        if *s == 1 || sig.senses(&1) {
            1
        } else {
            0
        }
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some(vec![0, 1])
    }
    fn transition_is_deterministic(&self) -> bool {
        true
    }
}

/// On a fixpoint the frontier drains to empty, stays empty across further
/// rounds, and a targeted corruption re-dirties only the victim's closed
/// neighborhood; the trajectory keeps matching the full scan throughout.
#[test]
fn frontier_drains_on_fixpoint_and_reopens_on_corruption() {
    let graph = Graph::grid(4, 4);
    let n = graph.node_count();
    let mut init = vec![0u8; n];
    init[5] = 1;
    let mut fast = ExecutionBuilder::new(&Spread, &graph)
        .seed(9)
        .active_set(true)
        .initial(init.clone());
    let mut full = ExecutionBuilder::new(&Spread, &graph)
        .seed(9)
        .active_set(false)
        .initial(init);
    let mut sched_a = SynchronousScheduler;
    let mut sched_b = SynchronousScheduler;
    // 4×4 grid: diameter 6, so 10 rounds reach the all-ones fixpoint.
    for _ in 0..10 {
        fast.step_with(&mut sched_a);
        full.step_with(&mut sched_b);
    }
    assert!(fast.configuration().iter().all(|s| *s == 1));
    assert_eq!(fast.dirty_count(), 0, "frontier must drain on a fixpoint");
    assert_eq!(full.dirty_count(), n, "full-scan reports all nodes");
    for _ in 0..3 {
        fast.step_with(&mut sched_a);
        full.step_with(&mut sched_b);
        assert_eq!(fast.dirty_count(), 0, "a stable round must not re-dirty");
    }
    // Corrupt one node back to 0: exactly its closed neighborhood re-opens.
    fast.corrupt(5, 0);
    full.corrupt(5, 0);
    assert_eq!(
        fast.dirty_count(),
        graph.inclusive_neighbors(5).len(),
        "corruption must re-open the victim's closed neighborhood"
    );
    for step in 0..6 {
        fast.step_with(&mut sched_a);
        full.step_with(&mut sched_b);
        assert_eq!(
            fast.configuration(),
            full.configuration(),
            "step {step} after corruption diverged"
        );
    }
    assert_eq!(fast.configuration(), full.configuration());
    assert_eq!(fast.counters(), full.counters());
    assert_eq!(fast.dirty_count(), 0, "healed fixpoint must drain again");
}

/// Randomized algorithms never get a frontier — their transitions draw
/// coins, so a clean node's re-evaluation is *not* the identity. Even an
/// explicit opt-in must be refused.
#[test]
fn randomized_algorithms_never_use_the_active_set() {
    let graph = Graph::cycle(8);
    let exec = ExecutionBuilder::new(&NoisyAdopt, &graph)
        .seed(4)
        .active_set(true)
        .initial(vec![0u8; 8]);
    assert!(!exec.uses_active_set());
    assert_eq!(exec.dirty_count(), 8, "no frontier: reports every node");
}

/// Regression (PR 1): seeded trajectories of randomized algorithms are
/// independent of the order in which a scripted schedule lists its
/// activation sets — an out-of-order replay equals the ascending-id replay.
#[test]
fn scripted_out_of_order_schedule_replays_like_ascending_order() {
    let graph = Graph::cycle(7);
    let init: Vec<u8> = vec![0; 7];
    let shuffled = ScriptedScheduler::new(vec![
        vec![5, 1, 3],
        vec![6, 0],
        vec![2, 4, 2, 0],
        vec![6, 5, 4, 3, 2, 1, 0],
    ]);
    let ascending = ScriptedScheduler::new(vec![
        vec![1, 3, 5],
        vec![0, 6],
        vec![0, 2, 4],
        vec![0, 1, 2, 3, 4, 5, 6],
    ]);
    let mut a = ExecutionBuilder::new(&NoisyAdopt, &graph)
        .seed(21)
        .initial(init.clone());
    let mut b = ExecutionBuilder::new(&NoisyAdopt, &graph)
        .seed(21)
        .initial(init);
    let mut sched_a = shuffled;
    let mut sched_b = ascending;
    for step in 0..40 {
        let oa = a.step_with(&mut sched_a);
        let ob = b.step_with(&mut sched_b);
        assert_eq!(oa, ob, "step {step}: outcome diverged");
        assert_eq!(
            a.configuration(),
            b.configuration(),
            "step {step}: an out-of-order schedule changed the trajectory"
        );
    }
    assert_eq!(a.counters(), b.counters());
    assert_eq!(a.rounds(), b.rounds());
}
