//! Algorithm fixtures shared across the integration-test suites.
//!
//! Each integration test file is its own crate, so shared fixtures live in
//! this `#[path]`-free common module. Not every suite uses every fixture.
#![allow(dead_code)]

use rand::RngCore;
use stone_age_unison::model::prelude::*;

/// Deterministic mod-6 cycler: every node changes state every step, so a
/// large graph's synchronous changed set exceeds the sharded-apply threshold
/// while a heterogeneous start keeps the `(old, new)` pairs diverse — no
/// uniform or partial-batch shortcut, the general apply path runs.
pub struct Cycler;

impl Algorithm for Cycler {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, _: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
        (s + 1) % 6
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some((0..6).collect())
    }
    fn transition_is_deterministic(&self) -> bool {
        true
    }
}

/// Moves state 0 to 1 and holds everything else: exactly the nodes in state
/// 0 change, which is the partial-batch apply shape ("every node in `old`
/// moves to `new`, nobody else changes").
pub struct Promote;

impl Algorithm for Promote {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, _: &Signal<u8>, _: &mut dyn RngCore) -> u8 {
        if *s == 0 {
            1
        } else {
            *s
        }
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some(vec![0, 1])
    }
    fn transition_is_deterministic(&self) -> bool {
        true
    }
}
