//! Checkpoint/restore round-trips are bit-identical to uninterrupted runs.
//!
//! The `sa` CLI checkpoints in-flight executions and resumes them after an
//! interruption; correctness rests on one property: **snapshot → serialize →
//! restore → run to completion equals an uninterrupted run in every
//! observable** (configurations, step outcomes, per-node metrics, round
//! accounting, fault victims). These tests pin that property across all six
//! schedulers, dense and sparse signal modes, the serial and sharded step
//! engines, with and without fault injection, for the paper's deterministic
//! unison algorithm and for a randomized algorithm (whose identical
//! trajectories additionally prove the per-node coin streams re-key
//! correctly across the resume boundary).
//!
//! The final test exercises the same property one level up, through the
//! sweep runner's JSON checkpoint documents (`sa_bench::sweep`), killing a
//! unit repeatedly until it completes.

use rand::RngCore;
use sa_bench::sweep::{
    CheckpointPolicy, SchedulerSpec, SweepSpec, SweepUnit, UnitOutcome, UnitResult,
};
use stone_age_unison::model::algorithm::{Algorithm, StateSpace};
use stone_age_unison::model::json::JsonValue;
use stone_age_unison::model::prelude::*;
use stone_age_unison::model::EngineKind;
use stone_age_unison::unison::AlgAu;

/// A randomized toy algorithm with a variable number of RNG draws per
/// activation (stream divergence after a resume would be loud).
struct NoisyAdopt;

impl Algorithm for NoisyAdopt {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(&self, s: &u8, sig: &Signal<u8>, rng: &mut dyn RngCore) -> u8 {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            let k = rng.gen_range(0..sig.len().max(1));
            sig.iter().nth(k).copied().unwrap_or(*s)
        } else {
            rng.gen_range(0..6u8)
        }
    }
    fn dense_state_space(&self) -> Option<Vec<u8>> {
        Some((0..6).collect())
    }
}

type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

/// The six built-in scheduler families (the scripted entry deliberately
/// lists nodes out of order and with duplicates).
fn scheduler_factories(n: usize) -> Vec<(&'static str, SchedulerFactory)> {
    vec![
        ("synchronous", Box::new(|| Box::new(SynchronousScheduler))),
        (
            "uniform-random",
            Box::new(|| Box::new(UniformRandomScheduler::new(0.5))),
        ),
        ("central", Box::new(|| Box::new(CentralScheduler))),
        (
            "round-robin",
            Box::new(|| Box::<RoundRobinScheduler>::default()),
        ),
        (
            "adversarial-laggard",
            Box::new(move || Box::new(AdversarialLaggardScheduler::starving(n - 1, 4))),
        ),
        (
            "scripted",
            Box::new(move || {
                Box::new(ScriptedScheduler::new(vec![
                    (0..n).rev().collect(),
                    vec![n / 2, 0, n / 2],
                    vec![n - 1, 0],
                    (0..n).collect(),
                ]))
            }),
        ),
    ]
}

fn fault_plan() -> FaultPlan {
    FaultPlan::Periodic {
        period: 2,
        count: 2,
    }
}

/// Runs the reference uninterrupted; runs a twin that is snapshotted at
/// `cut` steps, serialized through the JSON codec, restored into *fresh*
/// execution/scheduler/injector objects, and continued — asserting
/// bit-identity in every observable at every post-resume step.
#[allow(clippy::too_many_arguments)]
fn assert_roundtrip_equivalence<A, E, D>(
    alg: &A,
    graph: &Graph,
    init: Vec<A::State>,
    seed: u64,
    mode: SignalMode,
    engine: EngineKind,
    make_sched: &dyn Fn() -> Box<dyn Scheduler>,
    fault_palette: Option<&[A::State]>,
    encode: E,
    decode: D,
    cut: usize,
    steps: usize,
    context: &str,
) where
    A: Algorithm,
    E: Fn(&A::State) -> JsonValue,
    D: Fn(&JsonValue) -> Option<A::State>,
{
    let mut reference = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(engine)
        .initial(init.clone());
    let mut twin = ExecutionBuilder::new(alg, graph)
        .seed(seed)
        .signal_mode(mode)
        .engine(engine)
        .initial(init);
    let mut sched_ref = make_sched();
    let mut sched_twin = make_sched();
    let make_injector =
        || fault_palette.map(|p| FaultInjector::new(fault_plan(), p.to_vec(), seed));
    let mut injector_ref = make_injector();
    let mut injector_twin = make_injector();

    let drive = |exec: &mut Execution<'_, A>,
                 sched: &mut Box<dyn Scheduler>,
                 injector: &mut Option<FaultInjector<A::State>>|
     -> (StepOutcome, Vec<usize>) {
        let outcome = exec.step_with(&mut **sched);
        let victims = if outcome.round_completed {
            injector
                .as_mut()
                .map(|i| i.on_round(exec))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        (outcome, victims)
    };

    // Advance both to the cut point.
    for _ in 0..cut {
        drive(&mut reference, &mut sched_ref, &mut injector_ref);
        drive(&mut twin, &mut sched_twin, &mut injector_twin);
    }

    // Snapshot the twin and push everything through the JSON codec.
    let exec_json = twin.snapshot().to_json(&encode).render_pretty();
    let sched_position = sched_twin.checkpoint_position();
    let injector_json = injector_twin
        .as_ref()
        .map(|i| i.snapshot().to_json().render());
    drop(twin);
    drop(sched_twin);
    drop(injector_twin);

    // Restore into fresh objects.
    let snap = stone_age_unison::model::snapshot::ExecutionSnapshot::from_json(
        &JsonValue::parse(&exec_json).expect("snapshot JSON parses"),
        &decode,
    )
    .expect("snapshot deserializes");
    let mut resumed = ExecutionBuilder::new(alg, graph)
        .signal_mode(mode)
        .engine(engine)
        .resume(&snap);
    let mut sched_resumed = make_sched();
    sched_resumed.restore_position(sched_position);
    let mut injector_resumed = make_injector();
    if let (Some(injector), Some(json)) = (injector_resumed.as_mut(), injector_json) {
        let snap = stone_age_unison::model::fault::FaultInjectorSnapshot::from_json(
            &JsonValue::parse(&json).expect("injector JSON parses"),
        )
        .expect("injector snapshot deserializes");
        injector.restore(&snap);
    }

    assert_eq!(resumed.time(), reference.time(), "[{context}] cut time");
    // Run both to the horizon, comparing every observable.
    for step in cut..steps {
        let (a, va) = drive(&mut reference, &mut sched_ref, &mut injector_ref);
        let (b, vb) = drive(&mut resumed, &mut sched_resumed, &mut injector_resumed);
        assert_eq!(a, b, "[{context}] step {step}: outcome diverged");
        assert_eq!(va, vb, "[{context}] step {step}: fault victims diverged");
        assert_eq!(
            reference.configuration(),
            resumed.configuration(),
            "[{context}] step {step}: configuration diverged"
        );
        assert_eq!(
            reference.last_changed(),
            resumed.last_changed(),
            "[{context}] step {step}: changed-node list diverged"
        );
    }
    assert_eq!(reference.rounds(), resumed.rounds(), "[{context}] rounds");
    assert_eq!(
        reference.counters(),
        resumed.counters(),
        "[{context}] per-node metrics diverged"
    );
    assert!(
        resumed.validate_incremental_sensing(),
        "[{context}] resumed sensing state inconsistent"
    );
}

/// AlgAU (deterministic) across six schedulers × dense/sparse ×
/// serial/sharded, with fault injection, cutting at several offsets
/// (including mid-round cuts).
#[test]
fn algau_checkpoint_roundtrip_across_schedulers_modes_engines_and_faults() {
    let graph = Topology::Grid { rows: 3, cols: 4 }.build_deterministic();
    let n = graph.node_count();
    let alg = AlgAu::new(graph.diameter());
    let palette = alg.states();
    let init: Vec<_> = (0..n).map(|v| palette[v * 7 % palette.len()]).collect();
    let enc = |s: &stone_age_unison::unison::Turn| {
        JsonValue::Number(palette.iter().position(|p| p == s).unwrap() as f64)
    };
    let dec = |v: &JsonValue| v.as_usize().and_then(|i| palette.get(i).copied());
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            for engine in [EngineKind::Serial, EngineKind::Sharded { threads: 2 }] {
                for cut in [1usize, 13] {
                    let context = format!(
                        "algau/{sched_name}/{mode_name}/{}/cut={cut}",
                        engine.label()
                    );
                    assert_roundtrip_equivalence(
                        &alg,
                        &graph,
                        init.clone(),
                        0xc0_ffee,
                        mode,
                        engine,
                        factory.as_ref(),
                        Some(&palette),
                        enc,
                        dec,
                        cut,
                        40,
                        &context,
                    );
                }
            }
        }
    }
}

/// The same matrix for a randomized algorithm: identical post-resume
/// trajectories prove the counter-based coin streams continue exactly.
#[test]
fn randomized_checkpoint_roundtrip_across_schedulers_modes_engines_and_faults() {
    let graph = Topology::Cycle { n: 11 }.build_deterministic();
    let n = graph.node_count();
    let init: Vec<u8> = (0..n as u8).map(|v| v % 6).collect();
    let palette: Vec<u8> = (0..6).collect();
    let enc = |s: &u8| JsonValue::Number(*s as f64);
    let dec = |v: &JsonValue| v.as_usize().map(|x| x as u8);
    for (sched_name, factory) in scheduler_factories(n) {
        for (mode_name, mode) in [("dense", SignalMode::Auto), ("sparse", SignalMode::Sparse)] {
            for engine in [EngineKind::Serial, EngineKind::Sharded { threads: 3 }] {
                let context = format!("noisy/{sched_name}/{mode_name}/{}", engine.label());
                assert_roundtrip_equivalence(
                    &NoisyAdopt,
                    &graph,
                    init.clone(),
                    0x5eed,
                    mode,
                    engine,
                    factory.as_ref(),
                    Some(&palette),
                    enc,
                    dec,
                    17,
                    45,
                    &context,
                );
            }
        }
    }
}

/// A snapshot taken after a mid-run degrade to the sparse fallback restores
/// onto the sparse path and stays equivalent.
#[test]
fn checkpoint_after_degrade_restores_on_the_sparse_path() {
    let graph = Graph::grid(3, 3);
    let mut reference = ExecutionBuilder::new(&NoisyAdopt, &graph)
        .seed(3)
        .initial(vec![0u8; 9]);
    let mut twin = ExecutionBuilder::new(&NoisyAdopt, &graph)
        .seed(3)
        .initial(vec![0u8; 9]);
    let mut sched_a = SynchronousScheduler;
    let mut sched_b = SynchronousScheduler;
    for _ in 0..5 {
        reference.step_with(&mut sched_a);
        twin.step_with(&mut sched_b);
    }
    reference.corrupt(4, 77); // outside the declared space: degrade
    twin.corrupt(4, 77);
    assert!(!twin.uses_dense_signals());
    let json = twin
        .snapshot()
        .to_json(|s| JsonValue::Number(*s as f64))
        .render();
    let snap = stone_age_unison::model::snapshot::ExecutionSnapshot::from_json(
        &JsonValue::parse(&json).unwrap(),
        |v| v.as_usize().map(|x| x as u8),
    )
    .unwrap();
    assert!(!snap.dense);
    let mut resumed = ExecutionBuilder::new(&NoisyAdopt, &graph).resume(&snap);
    assert!(!resumed.uses_dense_signals());
    for step in 0..25 {
        reference.step_with(&mut sched_a);
        resumed.step_with(&mut sched_b);
        assert_eq!(
            reference.configuration(),
            resumed.configuration(),
            "step {step}"
        );
    }
    assert_eq!(reference.counters(), resumed.counters());
}

/// The sweep runner's JSON checkpoint documents resume bit-identically:
/// a unit killed every few steps and resumed from disk-format checkpoints
/// finishes with exactly the result of an uninterrupted run — across both
/// engines and with fault injection (the CI `sweep-smoke` job re-checks
/// this end-to-end through the `sa` binary and file system).
#[test]
fn sweep_unit_kill_resume_matches_uninterrupted() {
    let spec = SweepSpec::parse(
        r#"{
          "name": "roundtrip",
          "tasks": [{
            "id": "RT",
            "kind": "stabilization",
            "topologies": [{"kind": "torus", "rows": 3, "cols": 3}],
            "schedulers": ["round-robin", {"kind": "uniform-random", "p": 0.5}],
            "engines": ["serial", {"kind": "sharded", "threads": 2}],
            "fault": {"kind": "periodic", "period": 4, "count": 1},
            "seeds": 2,
            "max_rounds": 5000
          }]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    assert_eq!(units.len(), 8);
    let complete = |unit: &SweepUnit, policy: &CheckpointPolicy<'_>| {
        sa_bench::sweep::run_unit(unit, policy).expect("unit runs")
    };
    for unit in &units {
        let reference: UnitResult = match complete(unit, &CheckpointPolicy::default()) {
            UnitOutcome::Complete(r) => r,
            UnitOutcome::Interrupted(_) => unreachable!(),
        };
        let mut checkpoint: Option<JsonValue> = None;
        let mut kills = 0usize;
        let resumed = loop {
            let policy = CheckpointPolicy {
                every_steps: 0,
                sink: None,
                resume_from: checkpoint.as_ref(),
                interrupt_after_steps: Some(11),
                cancel: None,
            };
            match complete(unit, &policy) {
                UnitOutcome::Complete(r) => break r,
                UnitOutcome::Interrupted(doc) => {
                    kills += 1;
                    assert!(kills < 10_000, "unit {} never finished", unit.id());
                    // serialize → parse round-trip, as the CLI's state files do
                    checkpoint =
                        Some(JsonValue::parse(&doc.render_pretty()).expect("checkpoint parses"));
                }
            }
        };
        assert!(
            kills > 0,
            "unit {} finished before the first kill",
            unit.id()
        );
        assert_eq!(
            resumed,
            reference,
            "unit {} diverged after resume",
            unit.id()
        );
    }
    // serial and sharded cells of the same seed agree (engine invariance
    // carries through the checkpoint machinery too)
    let result = |u: &SweepUnit| match complete(u, &CheckpointPolicy::default()) {
        UnitOutcome::Complete(r) => r,
        UnitOutcome::Interrupted(_) => unreachable!(),
    };
    let serial: Vec<&SweepUnit> = units
        .iter()
        .filter(|u| u.engine.label() == "serial")
        .collect();
    let sharded: Vec<&SweepUnit> = units
        .iter()
        .filter(|u| u.engine.label() == "sharded-2")
        .collect();
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(
            (a.scheduler.label(), a.seed),
            (b.scheduler.label(), b.seed),
            "pairing assumption"
        );
        assert_eq!(result(a), result(b), "engines disagree for {}", a.id());
    }
    // sanity: the declarative scheduler vocabulary covers what we swept
    assert_eq!(SchedulerSpec::RoundRobin.label(), "round-robin");
}

/// Kill/resume through the **binary** checkpoint codec: transcoding every
/// interrupt document through `binary::encode → decode` must hand back the
/// *identical* document (same rendered bytes), and the resumed run must
/// finish bit-identical to both the JSON-path resume and the uninterrupted
/// reference. This is the in-process twin of the CI `sweep-smoke` job's
/// binary kill/resume leg.
#[test]
fn sweep_unit_kill_resume_through_binary_codec_matches_json() {
    use stone_age_unison::model::binary;
    let spec = SweepSpec::parse(
        r#"{
          "name": "binary-roundtrip",
          "tasks": [{
            "id": "BR",
            "kind": "stabilization",
            "topologies": [{"kind": "torus", "rows": 3, "cols": 3}],
            "schedulers": ["round-robin"],
            "engines": ["serial", {"kind": "sharded", "threads": 2}],
            "fault": {"kind": "periodic", "period": 4, "count": 1},
            "seeds": 1,
            "max_rounds": 5000
          }]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    assert_eq!(units.len(), 2);
    let complete = |unit: &SweepUnit, policy: &CheckpointPolicy<'_>| {
        sa_bench::sweep::run_unit(unit, policy).expect("unit runs")
    };
    // Kill/resume driver, parameterized by the checkpoint transcoding that
    // stands in for the CLI's disk round-trip.
    let kill_resume = |unit: &SweepUnit, transcode: &dyn Fn(&JsonValue) -> JsonValue| {
        let mut checkpoint: Option<JsonValue> = None;
        let mut kills = 0usize;
        loop {
            let policy = CheckpointPolicy {
                every_steps: 0,
                sink: None,
                resume_from: checkpoint.as_ref(),
                interrupt_after_steps: Some(9),
                cancel: None,
            };
            match complete(unit, &policy) {
                UnitOutcome::Complete(r) => break (r, kills),
                UnitOutcome::Interrupted(doc) => {
                    kills += 1;
                    assert!(kills < 10_000, "unit {} never finished", unit.id());
                    checkpoint = Some(transcode(&doc));
                }
            }
        }
    };
    for unit in &units {
        let reference: UnitResult = match complete(unit, &CheckpointPolicy::default()) {
            UnitOutcome::Complete(r) => r,
            UnitOutcome::Interrupted(_) => unreachable!(),
        };
        let (via_json, json_kills) = kill_resume(unit, &|doc| {
            JsonValue::parse(&doc.render_pretty()).expect("checkpoint parses")
        });
        let (via_binary, binary_kills) = kill_resume(unit, &|doc| {
            let bytes = binary::encode(doc);
            assert!(
                binary::is_binary(&bytes),
                "encoded checkpoints must carry the magic"
            );
            let decoded = binary::decode(&bytes).expect("binary checkpoint decodes");
            assert_eq!(
                decoded.render_pretty(),
                doc.render_pretty(),
                "binary transcoding must preserve the document byte for byte"
            );
            decoded
        });
        assert!(json_kills > 0 && binary_kills > 0, "probe must interrupt");
        assert_eq!(
            via_json,
            reference,
            "unit {}: JSON-path resume diverged",
            unit.id()
        );
        assert_eq!(
            via_binary,
            reference,
            "unit {}: binary-path resume diverged",
            unit.id()
        );
    }
}

/// The binary codec earns its keep at scale: on a 10⁴-node unit's live
/// checkpoint document (whose bulk is palette-index state arrays that the
/// codec writes as 1–2-byte varints), the encoding must be at least 10×
/// smaller than the pretty-printed JSON the runner would otherwise write.
#[test]
fn binary_checkpoints_are_an_order_of_magnitude_smaller() {
    use stone_age_unison::model::binary;
    let spec = SweepSpec::parse(
        r#"{
          "name": "size-probe",
          "tasks": [{
            "id": "SZ",
            "kind": "stabilization",
            "algorithms": ["min-plus-one"],
            "topologies": [{"kind": "torus", "rows": 100, "cols": 100}],
            "schedulers": ["synchronous"],
            "engines": ["serial"],
            "seeds": 1,
            "max_rounds": 100000
          }]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    let policy = CheckpointPolicy {
        every_steps: 0,
        sink: None,
        resume_from: None,
        interrupt_after_steps: Some(25),
        cancel: None,
    };
    let doc = match sa_bench::sweep::run_unit(&units[0], &policy).expect("unit runs") {
        UnitOutcome::Interrupted(doc) => doc,
        UnitOutcome::Complete(_) => panic!("size probe must interrupt mid-run"),
    };
    let json = doc.render_pretty();
    let bytes = binary::encode(&doc);
    assert!(
        bytes.len() * 10 <= json.len(),
        "binary checkpoint must be ≥10x smaller: {} bytes binary vs {} bytes JSON",
        bytes.len(),
        json.len()
    );
    assert_eq!(
        binary::decode(&bytes).expect("decodes"),
        doc,
        "compact encoding must stay lossless"
    );
}

/// The same kill/resume ≡ uninterrupted property for the new unit kinds of
/// the `algorithm` axis — the min-plus-one baseline and the LE/MIS
/// algorithms lifted through the synchronizer — and for a fault-recovery
/// scenario unit whose kills land inside the recovery phase too (the burst
/// bookkeeping is part of the checkpoint document). Serial and sharded
/// engines are both exercised; paired cells must agree bit-for-bit.
#[test]
fn multi_algorithm_and_scenario_units_kill_resume_match_uninterrupted() {
    let spec = SweepSpec::parse(
        r#"{
          "name": "axis-roundtrip",
          "tasks": [
            {
              "id": "AX",
              "kind": "stabilization",
              "algorithms": ["min-plus-one", "le", "mis"],
              "topologies": [{"kind": "cycle", "n": 5}],
              "schedulers": [{"kind": "uniform-random", "p": 0.5}],
              "engines": ["serial", {"kind": "sharded", "threads": 2}],
              "seeds": 1,
              "max_rounds": 100000
            },
            {
              "id": "SC",
              "kind": "scenario",
              "scenario": {"kind": "pulse", "segments": 3, "cells_per_segment": 2},
              "harshness": "severe",
              "bursts": 2,
              "schedulers": ["round-robin"],
              "engines": ["serial", {"kind": "sharded", "threads": 2}],
              "seeds": 1,
              "max_rounds": 100000
            }
          ]
        }"#,
    )
    .expect("spec parses");
    let units = spec.execution_units();
    assert_eq!(units.len(), 8);
    let complete = |unit: &SweepUnit, policy: &CheckpointPolicy<'_>| {
        sa_bench::sweep::run_unit(unit, policy).expect("unit runs")
    };
    let mut results = Vec::new();
    for unit in &units {
        let reference: UnitResult = match complete(unit, &CheckpointPolicy::default()) {
            UnitOutcome::Complete(r) => r,
            UnitOutcome::Interrupted(_) => unreachable!(),
        };
        assert!(reference.is_clean(), "unit {}: {reference:?}", unit.id());
        if unit.recovery.is_some() {
            assert_eq!(reference.recovery_rounds.len(), 2, "both bursts recovered");
        }
        let mut checkpoint: Option<JsonValue> = None;
        let mut kills = 0usize;
        let resumed = loop {
            let policy = CheckpointPolicy {
                every_steps: 0,
                sink: None,
                resume_from: checkpoint.as_ref(),
                interrupt_after_steps: Some(7),
                cancel: None,
            };
            match complete(unit, &policy) {
                UnitOutcome::Complete(r) => break r,
                UnitOutcome::Interrupted(doc) => {
                    kills += 1;
                    assert!(kills < 100_000, "unit {} never finished", unit.id());
                    // serialize → parse round-trip, as the CLI's state files do
                    checkpoint =
                        Some(JsonValue::parse(&doc.render_pretty()).expect("checkpoint parses"));
                }
            }
        };
        assert!(
            kills > 0,
            "unit {} finished before the first kill",
            unit.id()
        );
        assert_eq!(
            resumed,
            reference,
            "unit {} diverged after resume",
            unit.id()
        );
        results.push((unit.id(), reference));
    }
    // Engine invariance: each serial cell's result equals its sharded twin.
    for (serial_id, serial_result) in &results {
        if !serial_id.contains("--serial--") {
            continue;
        }
        let twin_id = serial_id.replace("--serial--", "--sharded-2--");
        let (_, twin) = results
            .iter()
            .find(|(id, _)| *id == twin_id)
            .expect("sharded twin exists");
        assert_eq!(serial_result, twin, "engines disagree for {serial_id}");
    }
}
