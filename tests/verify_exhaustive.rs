//! End-to-end coverage of `sa verify` (exhaustive model checking).
//!
//! Pins the headline certificates — AlgAU and min-plus-one certified
//! closed + convergent on the committed tiny instances — plus the two
//! deliberate negatives: the reset-attempt strawman's fair-cycle live-lock
//! (replayed step by step through [`Execution`] to confirm the trace
//! demonstrates a real violation) and the LE composite's closure violation
//! over the *observational* legitimacy oracle (the documented caveat, see
//! `docs/verify.md`). Everything here must be deterministic across runs.

use sa_bench::sweep::SweepSpec;
use sa_bench::verify::{render_verify_json, trace_json, verify_units};
use sa_model::explore::{explore, ExploreConfig, ViolationKind};
use sa_model::{Execution, Graph, StateSpace};
use unison_core::baseline::{reset_attempt_legitimate, ResetAttempt, ResetTurn};

fn verify_spec(text: &str) -> SweepSpec {
    SweepSpec::parse(text).expect("spec parses")
}

fn run_units(spec: &SweepSpec) -> Vec<sa_bench::verify::VerifyUnitReport> {
    verify_units(spec)
        .iter()
        .map(|u| u.run(&mut |_| {}).expect("unit runs"))
        .collect()
}

#[test]
fn algau_tiny_instances_certify() {
    let spec = verify_spec(
        r#"{"name": "t", "tasks": [
            {"id": "V1", "kind": "verify", "algorithms": ["algau"],
             "topologies": [{"kind": "path", "n": 2}, {"kind": "cycle", "n": 3}]},
            {"id": "V2", "kind": "verify", "algorithms": ["algau"],
             "topologies": [{"kind": "torus", "rows": 3, "cols": 3}],
             "space": "reachable", "fault_radius": 1}]}"#,
    );
    let reports = run_units(&spec);
    assert_eq!(reports.len(), 3);
    for report in &reports {
        assert!(report.certified(), "{} must certify", report.unit_id);
        assert!(report.stats.deterministic);
    }
    // Exact sizes anchor determinism and catch transition-relation drift.
    assert_eq!(reports[0].stats.states, 324); // |Q|^2 = 18^2, path-2 at D=1
    assert_eq!(reports[1].stats.states, 5832); // 18^3, cycle-3 at D=1
    assert_eq!(reports[2].stats.states, 16096); // torus-3x3, benign + radius-1
    assert_eq!(reports[2].space, "reachable-r1");
}

#[test]
fn min_plus_one_certifies_under_min_quotient() {
    let spec = verify_spec(
        r#"{"name": "t", "tasks": [
            {"id": "V1", "kind": "verify", "algorithms": ["min-plus-one"],
             "topologies": [{"kind": "path", "n": 3}]}]}"#,
    );
    let reports = run_units(&spec);
    assert_eq!(reports.len(), 1);
    assert!(reports[0].certified());
    // The register is unbounded; the min-subtraction quotient keeps the
    // explored palette finite (clocks 0..=2D+2 plus transient overshoot).
    assert_eq!(reports[0].stats.states, 131);
    assert_eq!(reports[0].stats.palette, 8);
}

/// The reset-attempt strawman live-locks on a 5-cycle at period 3; the
/// fair-cycle trace must replay through the real executor: every step's
/// configuration matches, the cycle closes, every cycle configuration is
/// illegitimate, and every node has a fairness witness inside the cycle.
#[test]
fn broken_reset_attempt_yields_replayable_counterexample() {
    let alg = ResetAttempt::new(3);
    let graph = Graph::cycle(5);
    let palette = alg.states();
    let mut seeds: Vec<Vec<ResetTurn>> = vec![vec![]];
    for _ in 0..5 {
        seeds = seeds
            .into_iter()
            .flat_map(|c| {
                palette.iter().map(move |s| {
                    let mut c = c.clone();
                    c.push(*s);
                    c
                })
            })
            .collect();
    }
    let report = explore(
        &alg,
        &graph,
        &mut seeds.into_iter(),
        &|g, cfg: &[ResetTurn]| reset_attempt_legitimate(&alg, g, cfg),
        None,
        &ExploreConfig::default(),
        &mut |_| {},
    )
    .expect("explore");
    assert!(report.closure.is_certified());
    let trace = report.convergence.trace().expect("convergence violated");
    assert_eq!(trace.kind, ViolationKind::FairCycle);
    let cycle_start = trace.cycle_start.expect("fair cycle has an entry");

    // Replay: the trace's activation sequence drives the executor to the
    // exact same configurations (ResetAttempt is deterministic, so the
    // execution seed is irrelevant).
    let start = report.decode(&trace.start);
    let mut exec = Execution::new(&alg, &graph, start, 7);
    let mut configs = Vec::with_capacity(trace.steps.len());
    for step in &trace.steps {
        exec.step(&step.activation);
        assert_eq!(
            exec.configuration(),
            report.decode(&step.config).as_slice(),
            "trace step must reproduce in the executor"
        );
        configs.push(exec.configuration().to_vec());
    }
    // The cycle closes on its entry configuration...
    let entry = if cycle_start == 0 {
        report.decode(&trace.start)
    } else {
        configs[cycle_start - 1].clone()
    };
    assert_eq!(configs.last().unwrap(), &entry, "cycle must close");
    // ...every configuration inside it avoids the legitimate set...
    for config in &configs[cycle_start..] {
        assert!(!reset_attempt_legitimate(&alg, &graph, config));
    }
    // ...and the schedule is fair: every node has a witness in the cycle.
    let mut witnessed: Vec<bool> = vec![false; 5];
    for w in &trace.fairness {
        assert!(w.step >= cycle_start, "witness must lie inside the cycle");
        witnessed[w.node] = true;
    }
    assert!(witnessed.iter().all(|&b| b), "all nodes witnessed");
}

/// The committed broken spec reports the same violation through the full
/// spec → unit → report pipeline.
#[test]
fn broken_spec_reports_fair_cycle() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/verify-broken.json"
    ))
    .expect("committed spec readable");
    let reports = run_units(&verify_spec(&text));
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.unit_id, "V1-reset-attempt-p3-cycle-5-full");
    assert!(report.closure_certified);
    assert!(!report.convergence_certified);
    let trace = report.convergence_trace.as_ref().expect("trace present");
    assert_eq!(trace.kind, ViolationKind::FairCycle);
    assert_eq!(trace.fairness.len(), 5, "one witness per node");
}

/// The LE composite's *observational* oracle is not closed: a planted
/// leader claim can look legitimate while the epoch state is inconsistent,
/// and the protocol (correctly) restarts out of it. Convergence still
/// certifies. This is the documented oracle caveat, pinned here so it
/// cannot silently change.
#[test]
fn le_observational_oracle_closure_caveat() {
    let spec = verify_spec(
        r#"{"name": "t", "tasks": [
            {"id": "V1", "kind": "verify", "algorithms": ["le"],
             "topologies": [{"kind": "complete", "n": 2}],
             "space": "reachable", "fault_radius": 1}]}"#,
    );
    let reports = run_units(&spec);
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert!(!report.stats.deterministic, "LE tosses coins");
    assert!(
        !report.closure_certified,
        "observational oracle is not closed"
    );
    assert!(report.convergence_certified, "every state reaches L");
    let trace = report.closure_trace.as_ref().expect("closure trace");
    assert_eq!(trace.kind, ViolationKind::Closure);
    assert_eq!(trace.steps.len(), 1, "closure counterexamples are one step");
}

#[test]
fn verify_results_deterministic_across_runs() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/verify-broken.json"
    ))
    .expect("committed spec readable");
    let spec = verify_spec(&text);
    let a = run_units(&spec);
    let b = run_units(&spec);
    assert_eq!(
        render_verify_json("verify-broken", &a).render_pretty(),
        render_verify_json("verify-broken", &b).render_pretty(),
        "VERIFY.json must be byte-identical across runs"
    );
    let ta = a[0].convergence_trace.as_ref().unwrap();
    let tb = b[0].convergence_trace.as_ref().unwrap();
    assert_eq!(
        trace_json(&a[0], "convergence", ta).render_pretty(),
        trace_json(&b[0], "convergence", tb).render_pretty(),
        "trace JSON must be byte-identical across runs"
    );
}
