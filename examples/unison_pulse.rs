//! Tissue-wide pulse coordination: AlgAU keeps every cell's phase within one tick of
//! its neighbors (a segmentation-clock-like behaviour) and recovers the coherent
//! pulse after transient faults scramble part of the tissue.
//!
//! Also demonstrates the synchronizer of Corollary 1.2 by driving a simple synchronous
//! "wavefront" program on top of the asynchronous pulse.
//!
//! ```text
//! cargo run --example unison_pulse
//! ```

use rand::RngCore;
use stone_age_unison::bio::{pulse_coherence, pulse_unison_recovery, Harshness, PulseScenario};
use stone_age_unison::model::algorithm::{Algorithm, StateSpace};
use stone_age_unison::model::prelude::*;
use stone_age_unison::synchronizer::Synchronized;
use stone_age_unison::unison::{AlgAu, GoodGraphOracle};

/// A toy synchronous program: every cell counts the simulated synchronous rounds
/// modulo 24 — a "developmental hour hand" that only makes sense if the rounds are
/// properly synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HourHand;

impl Algorithm for HourHand {
    type State = u8;
    type Output = u8;
    fn output(&self, s: &u8) -> Option<u8> {
        Some(*s)
    }
    fn transition(
        &self,
        s: &u8,
        signal: &stone_age_unison::model::signal::Signal<u8>,
        _rng: &mut dyn RngCore,
    ) -> u8 {
        // agree on the maximum sensed hour, then advance
        let max = signal.max_by_key(|x| *x).unwrap_or(*s).max(*s);
        (max + 1) % 24
    }
}

fn main() {
    let scenario = PulseScenario::new(5, 4);
    let graph = scenario.build();
    let d = scenario.diameter_bound();
    let alg = AlgAu::new(d);
    println!(
        "pulse field: {} cells in {} segments, diameter {}, AlgAU states {}",
        scenario.cells(),
        5,
        d,
        alg.state_count()
    );

    // Start from an adversarial configuration and watch the pulse become coherent.
    let palette = alg.states();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(4)
        .random_initial(&palette);
    let mut scheduler = UniformRandomScheduler::new(0.5);
    println!(
        "initial coherence: {:.2}",
        pulse_coherence(&alg, &graph, exec.configuration())
    );
    let outcome = exec.run_until_legitimate(&mut scheduler, &GoodGraphOracle::new(alg), 1_000_000);
    println!(
        "coherent pulse established after {} rounds; coherence {:.2}",
        outcome.rounds().expect("Theorem 1.1"),
        pulse_coherence(&alg, &graph, exec.configuration())
    );

    // Burst recovery across harshness levels.
    println!("\nrecovery of the pulse after fault bursts:");
    for harshness in [Harshness::Mild, Harshness::Moderate, Harshness::Severe] {
        let stats = pulse_unison_recovery(&scenario, harshness, 4, 77);
        println!(
            "  {harshness:?}: mean {:.0} rounds, worst {} rounds, unrecovered {}",
            stats.mean_recovery().unwrap_or(0.0),
            stats.max_recovery().unwrap_or(0),
            stats.unrecovered
        );
    }

    // The synchronizer: run the HourHand program asynchronously on top of AlgAU.
    println!("\nsynchronizer demo: a synchronous 'hour hand' driven by the asynchronous pulse");
    let sync = Synchronized::new(HourHand, d);
    let mut exec = ExecutionBuilder::new(&sync, &graph)
        .seed(9)
        .uniform(sync.lift(0u8));
    let mut scheduler = UniformRandomScheduler::new(0.5);
    exec.run_rounds(&mut scheduler, 200);
    let hours: Vec<u8> = exec.configuration().iter().map(|s| s.current).collect();
    let spread = hours.iter().max().unwrap() - hours.iter().min().unwrap();
    println!(
        "after 200 asynchronous rounds the simulated hour hands read {:?} (spread {spread}, \
         neighbors never differ by more than one simulated round)",
        &hours[..hours.len().min(8)]
    );
}
