//! Quickstart: run AlgAU on a small ring, watch it recover from an adversarial
//! initial configuration, and print the resulting clock trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stone_age_unison::model::algorithm::Algorithm;
use stone_age_unison::model::checker::measure_stabilization;
use stone_age_unison::model::prelude::*;
use stone_age_unison::unison::{AlgAu, AuChecker, GoodGraphOracle, Predicates};

fn main() {
    // A ring of 8 cells: diameter 4, so AlgAU uses k = 3·4 + 2 = 14 and 4k − 2 = 54
    // states — independent of the number of nodes.
    let graph = Graph::cycle(8);
    let diameter = graph.diameter();
    let alg = AlgAu::new(diameter);
    println!(
        "AlgAU on a {}-node ring: D = {diameter}, k = {}, |Q| = {} states, clock modulus {}",
        graph.node_count(),
        alg.k(),
        stone_age_unison::model::algorithm::StateSpace::state_count(&alg),
        alg.clock_size()
    );

    // The adversary picks an arbitrary initial configuration...
    let palette = stone_age_unison::model::algorithm::StateSpace::states(&alg);
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(2024)
        .random_initial(&palette);
    println!("\ninitial (adversarial) configuration:");
    print_configuration(&alg, &graph, exec.configuration());

    // ... and an asynchronous schedule; AlgAU still stabilizes.
    let mut scheduler = UniformRandomScheduler::new(0.5);
    let report = measure_stabilization(
        &mut exec,
        &mut scheduler,
        &GoodGraphOracle::new(alg),
        &AuChecker::new(alg),
        1_000_000,
        4 * diameter as u64 + 8,
    );
    let rounds = report
        .stabilization_rounds
        .expect("Theorem 1.1 guarantees stabilization");
    println!(
        "\nstabilized to a good configuration after {rounds} asynchronous rounds \
         (O(D^3) bound for D = {diameter}: {})",
        diameter.pow(3)
    );
    println!(
        "post-stabilization verification over {} rounds: {}",
        report.verification_rounds,
        if report.violations.is_empty() {
            "safety and liveness hold".to_string()
        } else {
            format!("violations: {:?}", report.violations)
        }
    );

    println!("\nconfiguration after stabilization (clock values):");
    print_configuration(&alg, &graph, exec.configuration());

    // Keep running: the clocks keep ticking in unison.
    println!("\nclock trace of node 0 over the next 12 of its updates:");
    let mut last = alg.output(exec.state(0));
    let mut printed = 0;
    while printed < 12 {
        exec.step_with(&mut scheduler);
        let clock = alg.output(exec.state(0));
        if clock != last {
            if let Some(c) = clock {
                print!("{c} ");
                printed += 1;
            }
            last = clock;
        }
    }
    println!("\ndone.");
}

fn print_configuration(alg: &AlgAu, graph: &Graph, config: &[stone_age_unison::unison::Turn]) {
    let p = Predicates::new(alg, graph);
    for (v, turn) in config.iter().enumerate() {
        let clock = alg
            .output(turn)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "faulty".to_string());
        println!(
            "  cell {v}: turn {turn}, clock {clock}, protected = {}, good = {}",
            p.node_protected(config, v),
            p.node_good(config, v)
        );
    }
    println!(
        "  graph: protected = {}, good = {}, max neighbor discrepancy = {}",
        p.graph_protected(config),
        p.graph_good(config),
        p.max_discrepancy(config)
    );
}
