//! Lateral inhibition in an epithelial tissue: the asynchronous self-stabilizing MIS
//! algorithm selects a well-spaced set of "differentiated" cells (think sensory organ
//! precursor selection), and keeps the pattern valid while environmental noise keeps
//! scrambling individual cells.
//!
//! ```text
//! cargo run --example tissue_mis
//! ```

use stone_age_unison::bio::{tissue_mis_availability, Harshness, TissueScenario};
use stone_age_unison::model::checker::measure_static_stabilization;
use stone_age_unison::model::prelude::*;
use stone_age_unison::protocols::mis::Decision;
use stone_age_unison::protocols::restart::RestartState;
use stone_age_unison::synchronizer::async_mis;

fn main() {
    let scenario = TissueScenario::sheet(4, 5);
    let graph = scenario.build();
    println!(
        "epithelial sheet: {} cells, {} junctions, diameter {}",
        graph.node_count(),
        graph.edge_count(),
        graph.diameter()
    );

    // The asynchronous MIS algorithm (AlgMIS lifted through the synchronizer).
    let alg = async_mis(scenario.diameter_bound());
    let checker = alg.checker();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(7)
        .uniform(alg.fresh_state());
    let mut scheduler = UniformRandomScheduler::new(0.6);

    let report = measure_static_stabilization(&mut exec, &mut scheduler, &checker, 30_000, 300);
    match report.stabilization_round {
        Some(r) => println!("pattern formed and became stable after {r} asynchronous rounds"),
        None => {
            println!("pattern did not stabilize within the horizon: {report:?}");
            return;
        }
    }

    println!("\ndifferentiation pattern ('#' = selected / IN, '.' = inhibited / OUT):");
    let config = exec.configuration();
    for row in 0..4 {
        let mut line = String::from("  ");
        for col in 0..5 {
            let cell = row * 5 + col;
            let ch = match &config[cell].current {
                RestartState::Host(h) => match h.decision {
                    Decision::In => '#',
                    Decision::Out => '.',
                    Decision::Undecided => '?',
                },
                RestartState::Restart(_) => 'R',
            };
            line.push(ch);
            line.push(' ');
        }
        println!("{line}");
    }

    // Now measure how well the tissue copes with continuous environmental noise.
    println!("\navailability of a correct pattern under continuous noise:");
    for harshness in [Harshness::Mild, Harshness::Moderate, Harshness::Severe] {
        let report = tissue_mis_availability(&scenario, harshness, 2_000, 99);
        println!(
            "  {harshness:?}: correct {:5.1}% of rounds ({} cell corruptions injected)",
            100.0 * report.availability,
            report.faults_injected
        );
    }
}
