//! Quorum sensing in a bacterial colony: the asynchronous self-stabilizing leader
//! election algorithm keeps exactly one "decision maker" cell, and re-elects one
//! whenever a transient fault wipes out or duplicates the role.
//!
//! ```text
//! cargo run --example quorum_leader
//! ```

use stone_age_unison::bio::{colony_leader_recovery, ColonyScenario, Harshness};
use stone_age_unison::model::checker::measure_static_stabilization;
use stone_age_unison::model::prelude::*;
use stone_age_unison::protocols::restart::RestartState;
use stone_age_unison::synchronizer::async_le;

fn main() {
    // A colony of 12 cells; environmental obstacles sever ~30% of the links but the
    // broadcast neighborhood keeps the diameter at 2.
    let scenario = ColonyScenario::new(12);
    let graph = scenario.build(5);
    println!(
        "bacterial colony: {} cells, {} links (complete graph would have {}), diameter {}",
        graph.node_count(),
        graph.edge_count(),
        graph.node_count() * (graph.node_count() - 1) / 2,
        graph.diameter()
    );

    let alg = async_le(scenario.diameter_bound());
    let checker = alg.checker();
    let mut exec = ExecutionBuilder::new(&alg, &graph)
        .seed(11)
        .uniform(alg.fresh_state());
    let mut scheduler = UniformRandomScheduler::new(0.5);

    let report = measure_static_stabilization(&mut exec, &mut scheduler, &checker, 60_000, 300);
    match report.stabilization_round {
        Some(r) => println!("a single decision maker emerged after {r} asynchronous rounds"),
        None => {
            println!("no stable leader within the horizon: {report:?}");
            return;
        }
    }
    let leaders: Vec<usize> = exec
        .configuration()
        .iter()
        .enumerate()
        .filter_map(|(v, s)| match &s.current {
            RestartState::Host(h) if h.leader => Some(v),
            _ => None,
        })
        .collect();
    println!("leader cell(s): {leaders:?}");

    // Recovery after fault bursts of increasing severity.
    println!("\nrecovery from transient fault bursts:");
    for harshness in [Harshness::Mild, Harshness::Moderate, Harshness::Severe] {
        let stats = colony_leader_recovery(&scenario, harshness, 4, 33);
        match stats.mean_recovery() {
            Some(mean) => println!(
                "  {harshness:?}: recovered from {} bursts, mean {:.0} rounds, worst {} rounds",
                stats.recovery_rounds.len(),
                mean,
                stats.max_recovery().unwrap_or(0)
            ),
            None => println!("  {harshness:?}: no burst recovered ({stats:?})"),
        }
    }
}
