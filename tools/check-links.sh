#!/usr/bin/env bash
# Docs link checker: fails on dead *relative* links in the repo's markdown
# (README, docs/, ROADMAP, and friends). External http(s)/mailto links and
# pure #anchors are skipped — this guards the file tree, not the internet.
#
# Usage: tools/check-links.sh [file.md ...]   (defaults to the committed set)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ROADMAP.md CHANGES.md PAPER.md docs/*.md)
fi

failures=0
for file in "${files[@]}"; do
    [ -f "$file" ] || { echo "MISSING FILE: $file"; failures=$((failures + 1)); continue; }
    dir=$(dirname "$file")
    # Extract inline markdown link targets: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path=${target%%#*}            # strip any anchor
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "DEAD LINK: $file -> $target"
            failures=$((failures + 1))
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//' | sed -E 's/ ".*"$//')
done

if [ "$failures" -gt 0 ]; then
    echo "check-links: $failures dead link(s)"
    exit 1
fi
echo "check-links: all relative links resolve"
